//! Figure 9: recursive BFS on random graphs — slowdown of the GPU code
//! variants (naive / hierarchical, with and without an extra per-block
//! stream) over serial CPU BFS, plus the flat GPU variant for reference
//! (which the paper reports at an 11–14x speedup over its normalizer).
//!
//! Normalizer note (EXPERIMENTS.md discusses this): the paper normalizes
//! by its recursive serial CPU code, which it reports within 1.25–3.3x of
//! the iterative one. Our faithful depth-first recursive CPU explodes with
//! re-relaxations on these random graphs (the cpu-rec/cpu-iter column),
//! so the slowdown columns here normalize by the *iterative* serial CPU —
//! the closest stand-in for the paper's normalizer magnitude.

use npar_apps::bfs;
use npar_bench::{datasets, results, runner, table};
use npar_core::{LoopParams, LoopTemplate};
use npar_sim::{CostModel, CpuConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    degree_range: String,
    edges: usize,
    cpu_recursive_seconds: f64,
    cpu_iterative_seconds: f64,
    /// (variant label, seconds, slowdown over recursive CPU, nested
    /// launches, overflow launches).
    variants: Vec<(String, f64, f64, u64, u64)>,
}

fn main() {
    runner::init();
    // The paper uses 50k nodes; the simulator default scales alongside the
    // other datasets (NPAR_SCALE=1.0 restores the paper size).
    let n = ((50_000.0 * datasets::scale().max(0.1)) as usize).max(2_000);
    let ranges: Vec<(u32, u32)> = vec![(1, 64), (1, 128), (1, 256), (1, 512), (1, 1024)];

    let rows: Vec<Row> = runner::parallel_map(ranges, move |range| {
        runner::with_big_stack(move || one_range(n, range))
    });

    let mut t = table::Table::new(
        format!(
            "Figure 9 — recursive BFS, random graphs ({n} nodes): slowdown vs iterative serial CPU"
        ),
        &[
            "outdegree",
            "edges",
            "cpu-rec/cpu-iter",
            "flat (speedup)",
            "naive",
            "naive+stream",
            "hier",
            "hier+stream",
            "launches",
            "overflowed",
        ],
    );
    for r in &rows {
        let find = |name: &str| {
            r.variants
                .iter()
                .find(|(label, ..)| label == name)
                .map(|(_, _, slow, _, _)| *slow)
                .unwrap_or(f64::NAN)
        };
        let naive = r.variants.iter().find(|(l, ..)| l == "naive").unwrap();
        t.row(vec![
            r.degree_range.clone(),
            table::count(r.edges as u64),
            table::fx(r.cpu_recursive_seconds / r.cpu_iterative_seconds),
            // Flat is reported as a speedup like in the paper's text.
            table::fx(1.0 / find("flat")),
            table::fx(find("naive")),
            table::fx(find("naive+stream")),
            table::fx(find("hier")),
            table::fx(find("hier+stream")),
            table::count(naive.3),
            table::count(naive.4),
        ]);
    }
    results::save("fig9_recursive_bfs", &[t], &rows);

    if runner::analyze_enabled() {
        // Probe the naive recursive variant on the densest range: its
        // launch-shape facts (child sizes, recursion depth) are what the
        // advisor reads to pick between dpar-thres / rec-hier / dpar.
        let range = (1u32, 1024);
        let analysis = runner::with_big_stack(move || {
            let g = datasets::fig9_graph(n, range);
            let mut gpu = runner::gpu();
            let _ = bfs::bfs_recursive_gpu(&mut gpu, &g, 0, bfs::RecBfsVariant::Naive, 1);
            gpu.analysis()
        });
        if !analysis.is_empty() {
            println!("\nnpar-analyze [fig9 naive probe, outdegree [1, 1024]]\n{analysis}");
            if let Some(k) = analysis
                .kernels
                .iter()
                .filter(|k| k.launch_shape.spawned_grids > 0)
                .max_by_key(|k| k.blocks)
            {
                println!(
                    "advisor on `{}`: {} (measured: every DP variant trails \
                     the flat kernel here — consolidation advice, not a \
                     template crossover)",
                    k.kernel,
                    k.advise().template
                );
            }
        }
    }
}

fn one_range(n: usize, range: (u32, u32)) -> Row {
    let g = datasets::fig9_graph(n, range);
    let cost = CostModel::default();
    let cpu_cfg = CpuConfig::xeon_e5_2620();
    let (_, rec_counter) = bfs::bfs_cpu_recursive(&g, 0);
    let cpu_rec_s = rec_counter.seconds(&cost.cpu, &cpu_cfg);
    let (_, iter_counter) = bfs::bfs_cpu_iterative(&g, 0);
    let cpu_iter_s = iter_counter.seconds(&cost.cpu, &cpu_cfg);

    let mut variants = Vec::new();
    {
        let mut gpu = runner::gpu();
        let r = bfs::bfs_flat_gpu(
            &mut gpu,
            &g,
            0,
            LoopTemplate::ThreadMapped,
            &LoopParams::default(),
        );
        runner::export_profile(&mut gpu, &format!("fig9_flat_deg{}", range.1));
        variants.push((
            "flat".to_string(),
            r.report.seconds,
            r.report.seconds / cpu_iter_s,
            0,
            0,
        ));
    }
    for (label, variant, streams) in [
        ("naive", bfs::RecBfsVariant::Naive, 1u32),
        ("naive+stream", bfs::RecBfsVariant::Naive, 2),
        ("hier", bfs::RecBfsVariant::Hier, 1),
        ("hier+stream", bfs::RecBfsVariant::Hier, 2),
    ] {
        let mut gpu = runner::gpu();
        let r = bfs::bfs_recursive_gpu(&mut gpu, &g, 0, variant, streams);
        runner::export_profile(&mut gpu, &format!("fig9_{label}_deg{}", range.1));
        variants.push((
            label.to_string(),
            r.report.seconds,
            r.report.seconds / cpu_iter_s,
            r.report.device_launches,
            r.report.overflow_launches,
        ));
    }

    Row {
        degree_range: format!("[{}, {}]", range.0, range.1),
        edges: g.num_edges(),
        cpu_recursive_seconds: cpu_rec_s,
        cpu_iterative_seconds: cpu_iter_s,
        variants,
    }
}
