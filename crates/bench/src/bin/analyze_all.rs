//! CI gate for npar-analyze: run the static analyzer across every loop
//! template, recursive template, sort and graph app the repo ships (the
//! same small seeded workloads tests/checker.rs proves hazard-clean under
//! Strict), and compare each kernel class's verdict tags against the
//! checked-in `crates/bench/ANALYZE_baseline.json`.
//!
//! A **regression** is any class whose baseline verdict was `proven`
//! coming back `unproven` or `flagged` — statically-proven facts are load
//! bearing (they gate scan elision), so losing one silently would erode
//! the Strict-mode fast path. New kernel classes are fine (they extend
//! the baseline on the next `--update-baseline`); a class that disappears
//! entirely only warns, so kernel renames don't hard-fail CI.
//!
//! Refresh with
//!   cargo run --release -p npar-bench --bin analyze_all -- --update-baseline

use npar_apps::{bc, bfs, pagerank, sort, spmv, sssp, tree_apps};
use npar_bench::{runner, table};
use npar_core::{LoopParams, LoopTemplate, RecParams, RecTemplate};
use npar_graph::{uniform_random, with_random_weights};
use npar_sim::{AnalysisReport, CheckLevel, Gpu};
use npar_tree::TreeGen;
use serde::{Deserialize, Serialize};

/// One kernel class's verdict tags in one workload.
#[derive(Serialize, Deserialize, Clone)]
struct ClassRow {
    workload: String,
    kernel: String,
    block_dim: u32,
    shared_mem_bytes: u32,
    elision: String,
    barriers: String,
    shared_bounds: String,
    shared_races: String,
    global_races: String,
}

impl ClassRow {
    /// The verdict columns the baseline gate inspects, by name.
    fn verdicts(&self) -> [(&'static str, &str); 5] {
        [
            ("elision", &self.elision),
            ("barriers", &self.barriers),
            ("shared_bounds", &self.shared_bounds),
            ("shared_races", &self.shared_races),
            ("global_races", &self.global_races),
        ]
    }
}

#[derive(Serialize, Deserialize)]
struct Baseline {
    rows: Vec<ClassRow>,
}

/// Lives next to the bench crate so it can be checked in and versioned,
/// like `BENCH_sim_baseline.json`.
fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("ANALYZE_baseline.json")
}

/// Run one workload under Strict with analysis on and flatten its report.
fn analyze(workload: &str, run: impl FnOnce(&mut Gpu) + Send + 'static) -> Vec<ClassRow> {
    let workload = workload.to_string();
    let report: AnalysisReport = runner::with_big_stack(move || {
        let mut gpu = Gpu::k20().with_check(CheckLevel::Strict).with_analyze(true);
        run(&mut gpu);
        gpu.analysis()
    });
    report
        .kernels
        .iter()
        .map(|k| ClassRow {
            workload: workload.clone(),
            kernel: k.kernel.clone(),
            block_dim: k.block_dim,
            shared_mem_bytes: k.shared_mem_bytes,
            elision: k.elision.tag().to_string(),
            barriers: k.barriers.tag().to_string(),
            shared_bounds: k.shared_bounds.tag().to_string(),
            shared_races: k.shared_races.tag().to_string(),
            global_races: k.global_races.tag().to_string(),
        })
        .collect()
}

fn collect() -> Vec<ClassRow> {
    let mut rows = Vec::new();

    // Every loop template, via SpMV (the paper's canonical irregular loop).
    let g = with_random_weights(&uniform_random(300, 1, 14, 33), 7, 5);
    let x = vec![1.0f32; g.num_nodes()];
    for template in LoopTemplate::ALL {
        let (g, x) = (g.clone(), x.clone());
        rows.extend(analyze(&format!("spmv/{template}"), move |gpu| {
            spmv::spmv_gpu(gpu, &g, &x, template, &LoopParams::default());
        }));
    }

    // Every recursive template, via tree descendants.
    let tree = TreeGen {
        depth: 6,
        outdegree: 6,
        sparsity: 1,
        seed: 99,
    }
    .generate();
    for template in RecTemplate::ALL {
        let tree = tree.clone();
        rows.extend(analyze(&format!("tree/{template}"), move |gpu| {
            tree_apps::tree_gpu(
                gpu,
                &tree,
                tree_apps::TreeMetric::Descendants,
                template,
                &RecParams::default(),
            );
        }));
    }

    // Graph apps on a shared small graph.
    let g = with_random_weights(&uniform_random(250, 1, 12, 21), 9, 4);
    for template in [
        LoopTemplate::ThreadMapped,
        LoopTemplate::DbufShared,
        LoopTemplate::DparNaive,
    ] {
        let g = g.clone();
        rows.extend(analyze(&format!("sssp/{template}"), move |gpu| {
            sssp::sssp_gpu(gpu, &g, 0, template, &LoopParams::default());
        }));
    }
    {
        let g = g.clone();
        rows.extend(analyze("bfs/flat", move |gpu| {
            bfs::bfs_flat_gpu(
                gpu,
                &g,
                0,
                LoopTemplate::ThreadMapped,
                &LoopParams::default(),
            );
        }));
    }
    for (label, variant) in [
        ("bfs/rec-naive", bfs::RecBfsVariant::Naive),
        ("bfs/rec-hier", bfs::RecBfsVariant::Hier),
    ] {
        let g = g.clone();
        rows.extend(analyze(label, move |gpu| {
            bfs::bfs_recursive_gpu(gpu, &g, 0, variant, 2);
        }));
    }
    {
        let g = g.clone();
        rows.extend(analyze("pagerank/block-mapped", move |gpu| {
            pagerank::pagerank_gpu(
                gpu,
                &g,
                3,
                LoopTemplate::BlockMapped,
                &LoopParams::default(),
            );
        }));
    }
    {
        let sources = bc::sample_sources(&g, 2);
        rows.extend(analyze("bc/dual-queue", move |gpu| {
            bc::bc_gpu(
                gpu,
                &g,
                &sources,
                LoopTemplate::DualQueue,
                &LoopParams::default(),
            );
        }));
    }

    // Sorts.
    {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(424242);
        let input: Vec<u32> = (0..6_000).map(|_| rng.gen::<u32>()).collect();
        for algo in [
            sort::SortAlgo::MergeFlat,
            sort::SortAlgo::QuickSimple,
            sort::SortAlgo::QuickAdvanced,
        ] {
            let input = input.clone();
            rows.extend(analyze(&format!("sort/{}", algo.label()), move |gpu| {
                sort::sort_gpu(gpu, &input, algo, &sort::SortParams::default());
            }));
        }
    }

    rows.sort_by_key(|r| {
        (
            r.workload.clone(),
            r.kernel.clone(),
            r.block_dim,
            r.shared_mem_bytes,
        )
    });
    rows
}

fn main() {
    runner::init();
    let rows = collect();

    let mut t = table::Table::new(
        "npar-analyze verdicts across templates, sorts and apps",
        &[
            "workload", "kernel", "bd", "shared", "elision", "barriers", "oob", "s-race", "g-race",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.workload.clone(),
            r.kernel.clone(),
            r.block_dim.to_string(),
            r.shared_mem_bytes.to_string(),
            r.elision.clone(),
            r.barriers.clone(),
            r.shared_bounds.clone(),
            r.shared_races.clone(),
            r.global_races.clone(),
        ]);
    }
    println!("{}", t.render());
    let proven = rows.iter().filter(|r| r.elision == "proven").count();
    println!(
        "{} kernel classes, {} with statically-proven elision",
        rows.len(),
        proven
    );

    if runner::update_baseline() {
        let baseline = Baseline { rows };
        let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
        std::fs::write(baseline_path(), json).expect("write baseline");
        println!("baseline updated: {}", baseline_path().display());
        return;
    }

    match std::fs::read_to_string(baseline_path()) {
        Ok(text) => {
            let baseline: Baseline = serde_json::from_str(&text).expect("parse baseline");
            let mut regressed = false;
            for b in &baseline.rows {
                let Some(r) = rows.iter().find(|r| {
                    r.workload == b.workload
                        && r.kernel == b.kernel
                        && r.block_dim == b.block_dim
                        && r.shared_mem_bytes == b.shared_mem_bytes
                }) else {
                    eprintln!(
                        "note: baseline class {}/{} (bd={}) no longer observed",
                        b.workload, b.kernel, b.block_dim
                    );
                    continue;
                };
                for ((name, now), (_, then)) in r.verdicts().iter().zip(b.verdicts().iter()) {
                    if *then == "proven" && *now != "proven" {
                        eprintln!(
                            "REGRESSION: {}/{} (bd={}) {name} dropped from proven to {now}",
                            b.workload, b.kernel, b.block_dim
                        );
                        regressed = true;
                    }
                }
            }
            if regressed {
                std::process::exit(1);
            }
            println!("all statically-proven verdicts held against the baseline");
        }
        Err(_) => {
            eprintln!(
                "no baseline at {} (run with --update-baseline to create one); skipping check",
                baseline_path().display()
            );
        }
    }
}
