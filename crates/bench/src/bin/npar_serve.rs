//! `npar-serve` — the JSON-lines front end over [`npar_serve::Service`].
//!
//! Reads one [`npar_serve::Request`] per stdin line, submits each to the
//! sharded fleet as it arrives (so independent requests simulate
//! concurrently while stdin streams), and after EOF prints one JSON
//! response per input line to stdout **in input order**:
//!
//! ```text
//! {"id":0,"key":"0x…","status":"done","source":"fresh","report":{…}}
//! {"id":1,"key":"0x…","status":"done","source":"cache","report":{…}}
//! {"id":2,"status":"shed"}
//! ```
//!
//! `status` is one of `done` / `timeout` / `failed` / `shed` / `invalid`
//! (the last two are refused at submit time and carry an `error` field).
//! Per-shard and fleet-total stats go to stderr on shutdown, which also
//! spills the result + memo cache when `--cache-dir` (or
//! `NPAR_SERVE_CACHE`) names a directory — see SERVING.md for the full
//! operator walkthrough and a flag-by-flag reference.

use std::io::{BufRead, Write};

use npar_bench::runner;
use npar_serve::{Request, Response, Service, Source, SubmitError, Ticket};
use serde::{Serialize, Value};

/// What one input line turned into at submit time.
enum Submitted {
    Ticket(Ticket),
    Refused(SubmitError),
    Unparsed(String),
}

fn response_value(id: usize, sub: Submitted) -> Value {
    let mut fields: Vec<(String, Value)> = vec![("id".into(), (id as u64).to_value())];
    match sub {
        Submitted::Ticket(ticket) => {
            fields.push(("key".into(), format!("{:#018x}", ticket.key).to_value()));
            match ticket.wait() {
                Response::Done { source, report } => {
                    let source = match source {
                        Source::Fresh => "fresh",
                        Source::Cache => "cache",
                        Source::Dedup => "dedup",
                    };
                    fields.push(("status".into(), "done".to_value()));
                    fields.push(("source".into(), source.to_value()));
                    fields.push(("report".into(), report.to_value()));
                }
                Response::TimedOut => fields.push(("status".into(), "timeout".to_value())),
                Response::Failed(e) => {
                    fields.push(("status".into(), "failed".to_value()));
                    fields.push(("error".into(), e.to_value()));
                }
            }
        }
        Submitted::Refused(SubmitError::Shed) => {
            fields.push(("status".into(), "shed".to_value()));
        }
        Submitted::Refused(SubmitError::Invalid(e)) => {
            fields.push(("status".into(), "invalid".to_value()));
            fields.push(("error".into(), e.to_value()));
        }
        Submitted::Unparsed(e) => {
            fields.push(("status".into(), "invalid".to_value()));
            fields.push(("error".into(), e.to_value()));
        }
    }
    Value::Object(fields)
}

fn main() {
    runner::init();
    let service = Service::start(runner::serve_config());

    // Submit while stdin streams; tickets resolve in the background.
    let mut submitted = Vec::new();
    for line in std::io::stdin().lock().lines() {
        let line = line.expect("read stdin");
        if line.trim().is_empty() {
            continue;
        }
        let sub = match serde_json::from_str::<Request>(&line) {
            Ok(req) => match service.submit(&req) {
                Ok(ticket) => Submitted::Ticket(ticket),
                Err(e) => Submitted::Refused(e),
            },
            Err(e) => Submitted::Unparsed(format!("unparsable request: {e}")),
        };
        submitted.push(sub);
    }

    // Answer in input order. A locked writer keeps large report lines whole.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (id, sub) in submitted.into_iter().enumerate() {
        let value = response_value(id, sub);
        writeln!(
            out,
            "{}",
            serde_json::to_string(&value).expect("serialize response")
        )
        .expect("write stdout");
    }
    drop(out);

    // Shutdown: spill the cache, print per-shard + total stats to stderr.
    for (shard, stats) in service.stats().iter().enumerate() {
        eprintln!("shard {shard}: {stats}");
    }
    let total = service.join();
    eprintln!("total: {total}");
}
