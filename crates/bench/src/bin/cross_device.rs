//! Generality check (not a paper figure): do the template orderings
//! survive a device change? Runs the Figure 5 comparison on the K20 and on
//! a GTX-Titan-class Kepler; the paper's templates target the hardware
//! *hierarchy*, so the winners should not move between same-family parts.

use npar_apps::sssp;
use npar_bench::{datasets, results, runner, table};
use npar_core::{LoopParams, LoopTemplate};
use npar_sim::{CostModel, DeviceConfig, Gpu};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    template: String,
    seconds: f64,
    speedup: f64,
}

fn main() {
    runner::init();
    let g = datasets::citeseer();
    let devices = vec![DeviceConfig::kepler_k20(), DeviceConfig::gtx_titan()];
    let templates = [
        LoopTemplate::ThreadMapped,
        LoopTemplate::DualQueue,
        LoopTemplate::DbufShared,
        LoopTemplate::DbufGlobal,
        LoopTemplate::DparOpt,
    ];

    let rows: Vec<Vec<Row>> = runner::parallel_map(devices, move |device| {
        let g = g.clone();
        runner::with_big_stack(move || {
            let time = |template| {
                let mut gpu =
                    runner::with_check_flag(Gpu::new(device.clone(), CostModel::default()));
                sssp::sssp_gpu(&mut gpu, &g, 0, template, &LoopParams::with_lb_thres(32))
                    .report
                    .seconds
            };
            let base = time(LoopTemplate::ThreadMapped);
            templates
                .iter()
                .map(|&t| {
                    let seconds = time(t);
                    Row {
                        device: device.name.clone(),
                        template: t.to_string(),
                        seconds,
                        speedup: base / seconds,
                    }
                })
                .collect()
        })
    });

    let mut t = table::Table::new(
        "Cross-device — SSSP template speedups, K20 vs GTX Titan (lbTHRES=32)",
        &["template", "K20", "Titan"],
    );
    for (i, template) in templates.iter().enumerate() {
        t.row(vec![
            template.to_string(),
            table::fx(rows[0][i].speedup),
            table::fx(rows[1][i].speedup),
        ]);
    }
    let flat: Vec<&Row> = rows.iter().flatten().collect();
    results::save("cross_device", &[t], &flat);

    // Template speedups must agree closely between same-family parts
    // (dpar-opt and dbuf-shared are within noise of each other on both, as
    // in the paper, so exact rank ordering is not required).
    for (a, b) in rows[0].iter().zip(&rows[1]) {
        let rel = (a.speedup - b.speedup).abs() / a.speedup.max(b.speedup);
        assert!(
            rel < 0.10,
            "{} speedup moved {:.0}% across devices ({:.2}x vs {:.2}x)",
            a.template,
            rel * 100.0,
            a.speedup,
            b.speedup
        );
    }
    println!("template speedups agree within 10% across both Kepler parts");
}
