//! Simulator self-benchmark: host-side throughput of the trace/alignment
//! pipeline with and without alignment memoization (DESIGN.md §8).
//!
//! Three synthetic kernels span the cache's best and worst cases:
//!
//! - `regular`  — coalesced grid-stride saxpy; every block records the same
//!   canonical trace, so with memoization all but the first block replay
//!   from the block cache.
//! - `divergent` — data-dependent trip counts and scattered addresses; no
//!   two warps fingerprint alike, so this measures pure cache *overhead*.
//! - `dp-heavy` — parents launch identical child grids; launch-bearing
//!   blocks are never cached, but the children all hit.
//!
//! Two tables come out: memoization on vs off (single-threaded, so the
//! cache is measured in isolation), and a host thread-scaling sweep over
//! 1/2/4/8 worker threads (memo on, DESIGN.md §10) with a per-core scaling
//! efficiency column. All three kernels opt into `parallel_trace` — they
//! are order-independent and never join children mid-block — so the sweep
//! exercises the fully concurrent executor.
//!
//! A third axis measures the event-driven timing pass itself
//! (DESIGN.md §11): each workload runs with `--fast-forward` on vs off and
//! reports the timing-pass speedup from cohort batching + the
//! homogeneous-grid wheel (`regular` and `dp-heavy` are uniform and gain;
//! `divergent` is the all-heterogeneous worst case and must stay within 3%
//! on wall time).
//!
//! A fourth axis measures the parallel timing pass (DESIGN.md §13): each
//! workload runs with `--timing-threads` 1 vs 8 and reports the
//! timing-parallel gain plus how many timing domains formed and committed.
//! The fourth workload exists for this axis: `stream-storm` launches
//! short uniform kernels contiguously across four HyperQ streams, so its
//! domains' time windows are provably disjoint and the optimistic commit
//! keeps all of them (~1.3x+ timing-pass gain on multi-core hosts). Wall
//! clock is *not* gated on this axis — CI containers may expose a single
//! core, where lanes cannot win — the gates are engagement (stream-storm
//! must commit >= 2 domains) and report byte-equality across lane counts.
//!
//! Writes `results/BENCH_sim.{txt,md,json}` and compares throughput to the
//! checked-in `BENCH_sim_baseline.json`, exiting nonzero on a >2x
//! throughput regression, a timing-pass fast-path speedup below 70% of the
//! baseline ratio, or a >3% divergent wall regression from the fast paths.
//! Refresh the baseline with `--update-baseline`.

use std::sync::Arc;

use npar_bench::{results, runner, table};
use npar_sim::{Gpu, KernelRef, LaunchConfig, Report, SimStats, Stream, ThreadCtx, ThreadKernel};
use serde::{Deserialize, Serialize};

/// Wall-time measurements repeat this many times; the minimum wins.
const ITERS: usize = 5;
/// Launches per synchronize batch, so cache hits amortize the cold miss.
const LAUNCHES: usize = 6;

// --- workload kernels ---------------------------------------------------

/// Regular: the paper's thread-mapped loop template on a regular-degree
/// input — each lane walks a fixed trip-count ramp (divergent within the
/// warp, identical in every block). Canonical addresses shift by a whole
/// number of memory transactions per block, so with memoization all but
/// the first block replay from the block cache.
struct Regular {
    x: npar_sim::GBuf<f32>,
    y: npar_sim::GBuf<f32>,
}

impl ThreadKernel for Regular {
    fn name(&self) -> &str {
        "bench-regular"
    }
    fn parallel_trace(&self) -> bool {
        true
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id();
        let lane = t.thread_idx() as usize % 32;
        // Heavy-tailed per-lane trip counts, like a power-law degree
        // distribution under thread mapping: most lanes finish quickly,
        // a few run long.
        let trips = if lane >= 24 { 16 + (lane - 24) * 32 } else { 4 };
        for j in 0..trips {
            t.ld(&self.x, i * 4 + lane * 997 + j);
            t.compute(1);
        }
        t.st(&self.y, i * 4);
    }
}

/// Irregular: per-thread trip counts and scattered reads defeat the cache,
/// and `salt` varies per launch so repeat launches cannot hit either. This
/// workload measures pure cache overhead (fingerprinting + lookups).
struct Divergent {
    n: usize,
    salt: usize,
    data: npar_sim::GBuf<f32>,
}

impl ThreadKernel for Divergent {
    fn name(&self) -> &str {
        "bench-divergent"
    }
    fn parallel_trace(&self) -> bool {
        true
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id() + self.salt;
        let trips = (i * 2_654_435_761) % 31;
        for j in 0..trips {
            t.ld(&self.data, (i * 7_919 + j * 104_729) % self.n);
            t.compute(1);
        }
    }
}

/// Child of the dynamic-parallelism workload: a small regular sweep.
struct DpChild {
    data: npar_sim::GBuf<f32>,
}

impl ThreadKernel for DpChild {
    fn name(&self) -> &str {
        "bench-dp-child"
    }
    fn parallel_trace(&self) -> bool {
        true
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id();
        for j in 0..4 {
            t.ld(&self.data, i + j * t.grid_threads());
            t.compute(1);
        }
        t.st(&self.data, i);
    }
}

/// Parent whose leaders launch identical children. Launch-bearing parent
/// blocks are excluded from the cache; the children all hit it.
struct DpParent {
    child: KernelRef,
}

impl ThreadKernel for DpParent {
    fn name(&self) -> &str {
        "bench-dp-parent"
    }
    fn parallel_trace(&self) -> bool {
        // Fire-and-forget launches only (joined at grid completion), so
        // concurrent tracing is legal.
        true
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        if t.is_leader() {
            t.launch(&self.child, LaunchConfig::new(4, 64), Stream::Default);
        }
        t.compute(1);
    }
}

/// Uniform short kernel for the multi-stream storm: every warp records an
/// identical tiny trace, so each grid's makespan fits inside the host
/// launch cadence and per-stream timing domains commit (DESIGN.md §13).
struct StreamStorm {
    data: npar_sim::GBuf<f32>,
}

impl ThreadKernel for StreamStorm {
    fn name(&self) -> &str {
        "bench-stream-storm"
    }
    fn parallel_trace(&self) -> bool {
        true
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id();
        t.ld(&self.data, i);
        t.compute(2);
        t.st(&self.data, i);
    }
}

// --- measurement --------------------------------------------------------

/// Host worker threads the scaling sweep visits.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn run_workload(
    name: &str,
    memo: bool,
    threads: usize,
    fast_forward: bool,
    timing_threads: usize,
) -> Report {
    let mut gpu = Gpu::k20()
        .with_memo(memo)
        .with_threads(threads)
        .with_fast_forward(fast_forward)
        .with_timing_threads(timing_threads);
    drive(&mut gpu, name);
    gpu.synchronize()
}

/// Strict-checked run for the elision column: single-threaded, memo and
/// fast paths on, hazard scanning at full severity with proof-carrying
/// elision on or off.
fn run_workload_strict(name: &str, elide: bool) -> Report {
    let mut gpu = Gpu::k20()
        .with_check(npar_sim::CheckLevel::Strict)
        .with_elide(elide);
    drive(&mut gpu, name);
    gpu.synchronize()
}

/// Queue one batch of `name`'s launches on `gpu`.
fn drive(gpu: &mut Gpu, name: &str) {
    match name {
        "regular" => {
            let threads = 128 * 256;
            let x = gpu.alloc::<f32>(threads * 4 + 32 * 997 + 128);
            let y = gpu.alloc::<f32>(threads * 4);
            let k = Arc::new(Regular { x, y });
            for _ in 0..LAUNCHES {
                gpu.launch(k.clone(), LaunchConfig::new(128, 256)).unwrap();
            }
        }
        "divergent" => {
            let n = 128 * 256;
            let data = gpu.alloc::<f32>(n);
            for salt in 0..LAUNCHES {
                let k = Arc::new(Divergent { n, salt, data });
                gpu.launch(k, LaunchConfig::new(128, 256)).unwrap();
            }
        }
        "dp-heavy" => {
            let data = gpu.alloc::<f32>(5 * 4 * 64);
            let child: KernelRef = Arc::new(DpChild { data });
            let k = Arc::new(DpParent { child });
            for _ in 0..LAUNCHES {
                gpu.launch(k.clone(), LaunchConfig::new(64, 64)).unwrap();
            }
        }
        "stream-storm" => {
            let data = gpu.alloc::<f32>(8 * 64);
            let k = Arc::new(StreamStorm { data });
            // Contiguous launch runs per stream: domain s's releases all
            // precede domain s+1's first release, and each grid finishes
            // well inside one host launch interval, so the windows are
            // disjoint and every domain commits.
            for s in 0..4u32 {
                for _ in 0..LAUNCHES {
                    gpu.launch_in(k.clone(), LaunchConfig::new(8, 64), Stream::Slot(s))
                        .unwrap();
                }
            }
        }
        other => panic!("unknown workload {other}"),
    }
}

/// Best-of-`ITERS` wall time per mode, with the representative reports.
/// Modes alternate within each iteration so background drift (frequency
/// scaling, page cache) hits both equally. Single-threaded, so the cache
/// is measured in isolation from host parallelism.
fn measure(name: &str) -> ((f64, Report), (f64, Report)) {
    let mut best: [Option<(f64, Report)>; 2] = [None, None];
    for _ in 0..ITERS {
        for (slot, memo) in [(0, false), (1, true)] {
            let r = run_workload(name, memo, 1, true, 1);
            let w = r.sim.wall_seconds;
            if best[slot].as_ref().is_none_or(|(b, _)| w < *b) {
                best[slot] = Some((w, r));
            }
        }
    }
    let [off, on] = best;
    (off.expect("iterations ran"), on.expect("iterations ran"))
}

/// Fast-path ablation for one workload (memo on, single-threaded): best
/// timing-pass nanoseconds and best wall seconds per `--fast-forward`
/// mode, alternating within each iteration like [`measure`]. The two
/// minima are tracked independently — timing ns feeds the speedup gate,
/// wall feeds the worst-case-overhead gate.
struct FfSample {
    timing_ns: u64,
    wall: f64,
}

fn measure_ff(name: &str) -> (FfSample, FfSample) {
    let mut best_ns = [u64::MAX; 2];
    let mut best_wall = [f64::INFINITY; 2];
    for _ in 0..ITERS {
        for (slot, ff) in [(0, false), (1, true)] {
            let r = run_workload(name, true, 1, ff, 1);
            best_ns[slot] = best_ns[slot].min(r.sim.timing_pass_ns);
            best_wall[slot] = best_wall[slot].min(r.sim.wall_seconds);
        }
    }
    (
        FfSample {
            timing_ns: best_ns[0],
            wall: best_wall[0],
        },
        FfSample {
            timing_ns: best_ns[1],
            wall: best_wall[1],
        },
    )
}

/// One `--timing-threads` mode of the parallel-timing ablation: best
/// timing-pass nanoseconds plus the domain counters of the representative
/// run (the counters are deterministic, so any iteration's agree).
struct TpSample {
    timing_ns: u64,
    domains: u64,
    committed: u64,
}

/// Parallel-timing ablation (memo on, fast paths on, single host
/// thread): timing-threads 1 vs 8, alternating within each iteration like
/// [`measure`]. Reports must be bit-identical across lane counts — that
/// byte-equality is a hard gate here, not just a test-suite property.
fn measure_tp(name: &str) -> (TpSample, TpSample) {
    let mut best_ns = [u64::MAX; 2];
    let mut counters = [(0u64, 0u64); 2];
    let mut reps: [Option<Report>; 2] = [None, None];
    for _ in 0..ITERS {
        for (slot, tt) in [(0usize, 1usize), (1, 8)] {
            let mut r = run_workload(name, true, 1, true, tt);
            best_ns[slot] = best_ns[slot].min(r.sim.timing_pass_ns);
            counters[slot] = (r.sim.timing_domains, r.sim.timing_domains_committed);
            r.sim = SimStats::default();
            if reps[slot].is_none() {
                reps[slot] = Some(r);
            }
        }
    }
    assert_eq!(
        reps[0], reps[1],
        "{name}: report differs between timing-threads 1 and 8"
    );
    let mk = |slot: usize| TpSample {
        timing_ns: best_ns[slot],
        domains: counters[slot].0,
        committed: counters[slot].1,
    };
    (mk(0), mk(1))
}

/// Strict-mode wall with proof-carrying elision on vs off (best of
/// iters, alternating like [`measure`]). The returned report is the
/// elide-on representative, for the elided-block share.
fn measure_strict(name: &str) -> (f64, f64, Report) {
    let mut best_wall = [f64::INFINITY; 2];
    let mut on_report = None;
    for _ in 0..ITERS {
        for (slot, elide) in [(0, false), (1, true)] {
            let r = run_workload_strict(name, elide);
            if r.sim.wall_seconds < best_wall[slot] {
                best_wall[slot] = r.sim.wall_seconds;
                if elide {
                    on_report = Some(r);
                }
            }
        }
    }
    (
        best_wall[1],
        best_wall[0],
        on_report.expect("iterations ran"),
    )
}

/// Best-of-`ITERS` wall time at each sweep thread count (memo on). Thread
/// counts alternate within each iteration, like [`measure`].
fn measure_scaling(name: &str) -> Vec<(usize, f64, Report)> {
    let mut best: Vec<Option<(f64, Report)>> = vec![None; THREAD_SWEEP.len()];
    for _ in 0..ITERS {
        for (slot, &threads) in THREAD_SWEEP.iter().enumerate() {
            let r = run_workload(name, true, threads, true, 1);
            let w = r.sim.wall_seconds;
            if best[slot].as_ref().is_none_or(|(b, _)| w < *b) {
                best[slot] = Some((w, r));
            }
        }
    }
    THREAD_SWEEP
        .iter()
        .zip(best)
        .map(|(&t, b)| {
            let (w, r) = b.expect("iterations ran");
            (t, w, r)
        })
        .collect()
}

#[derive(Serialize)]
struct Row {
    workload: String,
    memo_off_seconds: f64,
    memo_on_seconds: f64,
    speedup: f64,
    ops_traced: u64,
    ops_replayed: u64,
    block_hits: u64,
    warp_hits: u64,
    blocks: u64,
    memo_on_ops_per_sec: f64,
    memo_off_ops_per_sec: f64,
    memo_on_blocks_per_sec: f64,
    /// Timing-pass seconds with fast paths on (best of iters).
    timing_seconds: f64,
    /// Timing-pass share of host wall time, fast paths on.
    timing_share: f64,
    /// Timing-pass speedup from the fast paths (off ns / on ns).
    ff_timing_speedup: f64,
    /// Wall-time ratio fast-on / fast-off (worst-case overhead gate).
    ff_wall_ratio: f64,
    /// Timing-pass speedup from 8 timing lanes over the serial pass
    /// (DESIGN.md §13). Informational on single-core hosts.
    tp_timing_speedup: f64,
    /// Timing domains formed in the 8-lane run.
    tp_domains: u64,
    /// Timing domains whose optimistic windows committed (the rest rolled
    /// back to the merged serial suffix).
    tp_domains_committed: u64,
    /// Strict-mode wall with proof-carrying scan elision (best of iters).
    strict_on_seconds: f64,
    /// Strict-mode wall with elision disabled (full per-block scans).
    strict_off_seconds: f64,
    /// Strict-mode speedup bought by elision (off / on).
    strict_elide_speedup: f64,
    /// Blocks whose scan was elided in the elide-on run.
    strict_elided_blocks: u64,
}

#[derive(Serialize)]
struct ScalingRow {
    workload: String,
    threads: usize,
    seconds: f64,
    speedup_vs_1: f64,
    efficiency: f64,
    ops_traced: u64,
}

#[derive(Serialize)]
struct Rows {
    memo: Vec<Row>,
    scaling: Vec<ScalingRow>,
}

#[derive(Serialize, Deserialize)]
struct BaselineRow {
    workload: String,
    memo_on_ops_per_sec: f64,
    memo_off_ops_per_sec: f64,
    /// Timing-pass fast-path speedup at baseline-refresh time; the gate
    /// fails when the live ratio drops below 70% of this.
    ff_timing_speedup: f64,
    /// Timing-parallel speedup at baseline-refresh time. Gated like the
    /// fast-path ratio, but only when the baseline shows a real gain
    /// (>1.2x) — a single-core refresh records ~1.0x and the ratio gate
    /// stays dormant; the engagement gate below is always live.
    tp_timing_speedup: f64,
    /// Strict-mode elision speedup at baseline-refresh time; same 70%
    /// gate, applied only where the baseline shows a real gain (>1.05x).
    strict_elide_speedup: f64,
}

#[derive(Serialize, Deserialize)]
struct Baseline {
    rows: Vec<BaselineRow>,
}

/// The baseline lives next to the bench crate (not in the gitignored
/// `results/` directory) so it can be checked in and versioned.
fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_sim_baseline.json")
}

fn main() {
    runner::init();
    let update_baseline = runner::update_baseline();

    let rows: Vec<Row> = ["regular", "divergent", "dp-heavy", "stream-storm"]
        .iter()
        .map(|&name| {
            let ((off_s, off_r), (on_s, on_r)) = measure(name);
            assert_eq!(
                off_r.sim.ops_traced, on_r.sim.ops_traced,
                "{name}: both modes must trace identical work"
            );
            let (ff_off, ff_on) = measure_ff(name);
            let (tp_serial, tp_par) = measure_tp(name);
            let (strict_on, strict_off, strict_r) = measure_strict(name);
            Row {
                workload: name.to_string(),
                memo_off_seconds: off_s,
                memo_on_seconds: on_s,
                speedup: off_s / on_s,
                ops_traced: on_r.sim.ops_traced,
                ops_replayed: on_r.sim.ops_replayed,
                block_hits: on_r.sim.block_hits,
                warp_hits: on_r.sim.warp_hits,
                blocks: on_r.total().blocks,
                memo_on_ops_per_sec: on_r.sim.ops_traced as f64 / on_s,
                memo_off_ops_per_sec: off_r.sim.ops_traced as f64 / off_s,
                memo_on_blocks_per_sec: on_r.total().blocks as f64 / on_s,
                timing_seconds: ff_on.timing_ns as f64 * 1e-9,
                timing_share: (ff_on.timing_ns as f64 * 1e-9 / on_s).min(1.0),
                ff_timing_speedup: ff_off.timing_ns as f64 / ff_on.timing_ns.max(1) as f64,
                ff_wall_ratio: ff_on.wall / ff_off.wall,
                tp_timing_speedup: tp_serial.timing_ns as f64 / tp_par.timing_ns.max(1) as f64,
                tp_domains: tp_par.domains,
                tp_domains_committed: tp_par.committed,
                strict_on_seconds: strict_on,
                strict_off_seconds: strict_off,
                strict_elide_speedup: strict_off / strict_on,
                strict_elided_blocks: strict_r.sim.elided,
            }
        })
        .collect();

    let mut t = table::Table::new(
        "Simulator throughput — alignment memoization on vs off",
        &[
            "workload",
            "memo off",
            "memo on",
            "speedup",
            "ops",
            "replayed",
            "block hits",
            "ops/s (on)",
            "blocks/s (on)",
            "timing",
            "ffwd gain",
            "tpar gain",
            "domains",
            "strict wall",
            "elide gain",
            "elided",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.workload.clone(),
            table::ms(r.memo_off_seconds),
            table::ms(r.memo_on_seconds),
            table::fx(r.speedup),
            table::count(r.ops_traced),
            table::pct(r.ops_replayed as f64 / r.ops_traced.max(1) as f64),
            table::count(r.block_hits),
            format!("{:.1}m/s", r.memo_on_ops_per_sec / 1e6),
            format!("{:.1}k/s", r.memo_on_blocks_per_sec / 1e3),
            format!(
                "{} ({})",
                table::ms(r.timing_seconds),
                table::pct(r.timing_share)
            ),
            table::fx(r.ff_timing_speedup),
            table::fx(r.tp_timing_speedup),
            format!("{}/{}", r.tp_domains_committed, r.tp_domains),
            format!(
                "{} / {}",
                table::ms(r.strict_on_seconds),
                table::ms(r.strict_off_seconds)
            ),
            table::fx(r.strict_elide_speedup),
            table::count(r.strict_elided_blocks),
        ]);
    }

    // The adaptive memo bypass (DESIGN.md §8) must keep hostile workloads
    // from paying for a cache that never hits: after the probe window the
    // divergent kernel's fingerprint class is demoted and tracing runs
    // bare, so memo-on may not lose to memo-off beyond noise.
    let divergent = rows
        .iter()
        .find(|r| r.workload == "divergent")
        .expect("divergent row");
    if divergent.speedup < 0.97 {
        eprintln!(
            "REGRESSION: divergent memo-on {:.3}x vs memo-off — adaptive bypass not engaging",
            divergent.speedup
        );
        std::process::exit(1);
    }

    // The all-heterogeneous worst case never forms cohorts and never
    // fast-forwards, so the fast paths may cost it at most the eligibility
    // checks: wall time with them on must stay within 3% of off.
    if divergent.ff_wall_ratio > 1.03 {
        eprintln!(
            "REGRESSION: divergent wall with fast paths on is {:.3}x of off (>1.03x)",
            divergent.ff_wall_ratio
        );
        std::process::exit(1);
    }

    // Parallel-timing engagement gate (DESIGN.md §13): the storm's
    // per-stream windows are disjoint by construction, so the optimistic
    // commit must keep at least two domains. This — not wall clock — is
    // the gate, because a single-core container (the CI floor) gives the
    // lanes nothing to win with; on multi-core hosts the storm's
    // timing-pass gain is ~1.3x+ and the baseline ratio gate below tracks
    // it. Report byte-equality across lane counts is asserted inside
    // measure_tp.
    let storm = rows
        .iter()
        .find(|r| r.workload == "stream-storm")
        .expect("stream-storm row");
    if storm.tp_domains < 2 || storm.tp_domains_committed < 2 {
        eprintln!(
            "REGRESSION: stream-storm committed {}/{} timing domains (expected >= 2 committed)",
            storm.tp_domains_committed, storm.tp_domains
        );
        std::process::exit(1);
    }

    let scaling: Vec<ScalingRow> = ["regular", "divergent", "dp-heavy", "stream-storm"]
        .iter()
        .flat_map(|&name| {
            let runs = measure_scaling(name);
            let serial = runs[0].1;
            runs.into_iter()
                .map(|(threads, seconds, r)| ScalingRow {
                    workload: name.to_string(),
                    threads,
                    seconds,
                    speedup_vs_1: serial / seconds,
                    efficiency: serial / seconds / threads as f64,
                    ops_traced: r.sim.ops_traced,
                })
                .collect::<Vec<_>>()
        })
        .collect();

    let mut ts = table::Table::new(
        "Host thread scaling — trace/align pipeline, memo on (reports bit-identical)",
        &[
            "workload",
            "threads",
            "wall",
            "speedup",
            "efficiency",
            "ops",
        ],
    );
    for r in &scaling {
        ts.row(vec![
            r.workload.clone(),
            r.threads.to_string(),
            table::ms(r.seconds),
            table::fx(r.speedup_vs_1),
            table::pct(r.efficiency),
            table::count(r.ops_traced),
        ]);
    }

    let rows = Rows {
        memo: rows,
        scaling,
    };
    results::save("BENCH_sim", &[t, ts], &rows);
    let rows = rows.memo;

    if update_baseline {
        let baseline = Baseline {
            rows: rows
                .iter()
                .map(|r| BaselineRow {
                    workload: r.workload.clone(),
                    memo_on_ops_per_sec: r.memo_on_ops_per_sec,
                    memo_off_ops_per_sec: r.memo_off_ops_per_sec,
                    ff_timing_speedup: r.ff_timing_speedup,
                    tp_timing_speedup: r.tp_timing_speedup,
                    strict_elide_speedup: r.strict_elide_speedup,
                })
                .collect(),
        };
        let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
        std::fs::write(baseline_path(), json).expect("write baseline");
        println!("baseline updated: {}", baseline_path().display());
        return;
    }

    match std::fs::read_to_string(baseline_path()) {
        Ok(text) => {
            let baseline: Baseline = serde_json::from_str(&text).expect("parse baseline");
            let mut regressed = false;
            for b in &baseline.rows {
                let Some(r) = rows.iter().find(|r| r.workload == b.workload) else {
                    continue;
                };
                for (mode, now, then) in [
                    ("memo-on", r.memo_on_ops_per_sec, b.memo_on_ops_per_sec),
                    ("memo-off", r.memo_off_ops_per_sec, b.memo_off_ops_per_sec),
                ] {
                    if now * 2.0 < then {
                        eprintln!(
                            "REGRESSION: {} ({mode}) {:.2}m ops/s vs baseline {:.2}m ops/s (>2x slower)",
                            b.workload,
                            now / 1e6,
                            then / 1e6
                        );
                        regressed = true;
                    }
                }
                // Timing-pass fast-path ratio gate: the speedup the fast
                // paths buy on this workload must not drop below 70% of
                // the ratio recorded at baseline-refresh time (the 30%
                // slack absorbs scheduler-noise on sub-ms timing passes;
                // a real fast-path break shows up as ~1.0x, far below).
                if b.ff_timing_speedup > 0.0 && r.ff_timing_speedup < b.ff_timing_speedup * 0.7 {
                    eprintln!(
                        "REGRESSION: {} timing-pass fast-path speedup {:.2}x vs baseline {:.2}x",
                        b.workload, r.ff_timing_speedup, b.ff_timing_speedup
                    );
                    regressed = true;
                }
                // Timing-parallel ratio gate: live only where the
                // baseline was refreshed on a host where the lanes won
                // (>1.2x); a single-core baseline records ~1.0x and the
                // engagement gate above carries the check instead.
                if b.tp_timing_speedup > 1.2 && r.tp_timing_speedup < b.tp_timing_speedup * 0.7 {
                    eprintln!(
                        "REGRESSION: {} timing-parallel speedup {:.2}x vs baseline {:.2}x",
                        b.workload, r.tp_timing_speedup, b.tp_timing_speedup
                    );
                    regressed = true;
                }
                // Strict-mode elision gate, mirroring the fast-path one:
                // where the baseline shows a real gain, the live run must
                // keep at least 70% of it. Workloads that never promote
                // (divergent) sit near 1.0x and are exempt, but elision
                // may never *cost* more than ~7% wall anywhere (the
                // never-promoted worst case pays forced fingerprinting).
                if b.strict_elide_speedup > 1.05
                    && r.strict_elide_speedup < b.strict_elide_speedup * 0.7
                {
                    eprintln!(
                        "REGRESSION: {} strict elision speedup {:.2}x vs baseline {:.2}x",
                        b.workload, r.strict_elide_speedup, b.strict_elide_speedup
                    );
                    regressed = true;
                }
                if r.strict_elide_speedup < 0.93 {
                    eprintln!(
                        "REGRESSION: {} strict wall with elision on is {:.3}x of off (>1.075x cost)",
                        b.workload,
                        1.0 / r.strict_elide_speedup
                    );
                    regressed = true;
                }
            }
            if regressed {
                std::process::exit(1);
            }
            println!("throughput and fast-path ratios within baseline gates");
        }
        Err(_) => {
            eprintln!(
                "no baseline at {} (run with --update-baseline to create one); skipping check",
                baseline_path().display()
            );
        }
    }
}
