//! Figure 5: SSSP on CiteSeer — speedup of the five load-balancing
//! templates over the baseline thread-mapped implementation, with the
//! number of nested kernel calls of the dynamic-parallelism variants.

use npar_apps::sssp;
use npar_bench::{datasets, results, runner, table};
use npar_core::{LoopParams, LoopTemplate};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    template: String,
    lb_thres: usize,
    seconds: f64,
    speedup: f64,
    nested_launches: u64,
}

fn main() {
    runner::init();
    let g = datasets::citeseer();
    println!(
        "dataset: CiteSeer-like, {}",
        npar_graph::DegreeStats::of(&g)
    );

    let (base, analysis) = runner::with_big_stack({
        let g = g.clone();
        move || {
            let mut gpu = runner::gpu();
            let r = sssp::sssp_gpu(
                &mut gpu,
                &g,
                0,
                LoopTemplate::ThreadMapped,
                &LoopParams::default(),
            );
            runner::export_profile(&mut gpu, "fig5_sssp_thread-mapped");
            // The baseline run doubles as the advisor's probe: npar-analyze
            // reads the thread-mapped traces and predicts the best template.
            (r, gpu.analysis())
        }
    });
    println!(
        "baseline thread-mapped: {} ({} iterations)",
        table::ms(base.report.seconds),
        base.iterations
    );

    let lb_values = [32usize, 64, 128, 256, 1024];
    let mut jobs = Vec::new();
    for template in LoopTemplate::LOAD_BALANCED {
        for lb in lb_values {
            jobs.push((template, lb));
        }
    }
    let g2 = g.clone();
    let rows: Vec<Row> = runner::parallel_map(jobs, move |(template, lb)| {
        let g = g2.clone();
        let base_s = base.report.seconds;
        runner::with_big_stack(move || {
            let mut gpu = runner::gpu();
            let r = sssp::sssp_gpu(&mut gpu, &g, 0, template, &LoopParams::with_lb_thres(lb));
            runner::export_profile(&mut gpu, &format!("fig5_sssp_{template}_lb{lb}"));
            Row {
                template: template.to_string(),
                lb_thres: lb,
                seconds: r.report.seconds,
                speedup: base_s / r.report.seconds,
                nested_launches: r.report.device_launches,
            }
        })
    });

    let mut t = table::Table::new(
        "Figure 5 — SSSP speedup over thread-mapped baseline (CiteSeer)",
        &["template", "lbTHRES", "time", "speedup", "nested-calls"],
    );
    for r in &rows {
        t.row(vec![
            r.template.clone(),
            r.lb_thres.to_string(),
            table::ms(r.seconds),
            table::fx(r.speedup),
            table::count(r.nested_launches),
        ]);
    }
    results::save("fig5_sssp", &[t], &rows);

    if runner::analyze_enabled() && !analysis.is_empty() {
        println!("\nnpar-analyze [fig5 thread-mapped probe]\n{analysis}");
        let best = rows
            .iter()
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .expect("fig5 produced rows");
        let measured = if best.speedup > 1.0 {
            best.template.as_str()
        } else {
            "thread-mapped"
        };
        // The template sweep transforms the hot kernel; pick it by total
        // probe work, not block count (the update helper ties on blocks).
        if let Some(k) = analysis
            .kernels
            .iter()
            .max_by_key(|k| u64::from(k.lane_ops_max) * k.blocks)
        {
            let advice = k.advise();
            let verdict = if advice.template == measured {
                "agree"
            } else {
                "DISAGREE"
            };
            println!(
                "advisor on `{}`: {} | measured best: {} -> {}",
                k.kernel, advice.template, measured, verdict
            );
        }
    }
}
