//! §III.B calibration check: speedups of the *baseline thread-mapped* GPU
//! implementations over the serial CPU codes. The paper reports 8.2x
//! (SSSP), 2.5x (BC), 15.8x (PageRank) and 2.4x (SpMV); this binary prints
//! ours next to those targets (cost-model exchange rates are frozen, see
//! DESIGN.md §4).

use npar_apps::{bc, pagerank, spmv, sssp};
use npar_bench::{datasets, results, runner, table};
use npar_core::{LoopParams, LoopTemplate};
use npar_sim::{CpuConfig, StallCycles};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    app: String,
    cpu_seconds: f64,
    gpu_seconds: f64,
    speedup: f64,
    paper_speedup: f64,
    /// npar-prof stall attribution for the whole run (raw cycles).
    stalls: StallCycles,
}

fn main() {
    runner::init();
    let rows = runner::with_big_stack(run);
    let mut t = table::Table::new(
        "Baseline thread-mapped GPU vs serial CPU (paper §III.B)",
        &["app", "cpu", "gpu", "speedup", "paper"],
    );
    for r in &rows {
        t.row(vec![
            r.app.clone(),
            table::ms(r.cpu_seconds),
            table::ms(r.gpu_seconds),
            table::fx(r.speedup),
            table::fx(r.paper_speedup),
        ]);
    }
    // Where the baselines spend their cycles — the stall shares explain the
    // speedup deviations from the paper (EXPERIMENTS.md discusses SpMV).
    let mut s = table::Table::new(
        "Baseline stall attribution, % of attributed cycles",
        &[
            "app", "compute", "diverge", "gmem", "shared", "atomic", "launch", "barrier",
        ],
    );
    for r in &rows {
        let total = r.stalls.total().max(f64::MIN_POSITIVE);
        let mut cells = vec![r.app.clone()];
        cells.extend(r.stalls.named().iter().map(|(_, c)| table::pct(c / total)));
        s.row(cells);
    }
    results::save("baseline_speedups", &[t, s], &rows);
}

fn run() -> Vec<Row> {
    let cpu_cfg = CpuConfig::xeon_e5_2620();
    let params = LoopParams::default();
    let mut rows = Vec::new();

    // SSSP on CiteSeer (weighted).
    {
        let g = datasets::citeseer();
        let (_, counter) = sssp::sssp_cpu(&g, 0);
        let cpu_s = counter.seconds(&npar_sim::CostModel::default().cpu, &cpu_cfg);
        let mut gpu = runner::gpu();
        let r = sssp::sssp_gpu(&mut gpu, &g, 0, LoopTemplate::ThreadMapped, &params);
        runner::export_profile(&mut gpu, "baseline_sssp");
        rows.push(Row {
            app: "SSSP".into(),
            cpu_seconds: cpu_s,
            gpu_seconds: r.report.seconds,
            speedup: cpu_s / r.report.seconds,
            paper_speedup: 8.2,
            stalls: r.report.total().stalls,
        });
    }

    // BC on Wiki-Vote (sampled sources).
    {
        let g = datasets::wiki_vote();
        let sources = bc::sample_sources(&g, 8);
        let (_, counter) = bc::bc_cpu(&g, &sources);
        let cpu_s = counter.seconds(&npar_sim::CostModel::default().cpu, &cpu_cfg);
        let mut gpu = runner::gpu();
        let r = bc::bc_gpu(&mut gpu, &g, &sources, LoopTemplate::ThreadMapped, &params);
        runner::export_profile(&mut gpu, "baseline_bc");
        rows.push(Row {
            app: "BC".into(),
            cpu_seconds: cpu_s,
            gpu_seconds: r.report.seconds,
            speedup: cpu_s / r.report.seconds,
            paper_speedup: 2.5,
            stalls: r.report.total().stalls,
        });
    }

    // PageRank on CiteSeer (5 iterations).
    {
        let g = datasets::citeseer_unweighted();
        let (_, counter) = pagerank::pagerank_cpu(&g, 5);
        let cpu_s = counter.seconds(&npar_sim::CostModel::default().cpu, &cpu_cfg);
        let mut gpu = runner::gpu();
        let r = pagerank::pagerank_gpu(&mut gpu, &g, 5, LoopTemplate::ThreadMapped, &params);
        runner::export_profile(&mut gpu, "baseline_pagerank");
        rows.push(Row {
            app: "PageRank".into(),
            cpu_seconds: cpu_s,
            gpu_seconds: r.report.seconds,
            speedup: cpu_s / r.report.seconds,
            paper_speedup: 15.8,
            stalls: r.report.total().stalls,
        });
    }

    // SpMV on CiteSeer (weighted matrix).
    {
        let g = datasets::citeseer();
        let x: Vec<f32> = (0..g.num_nodes()).map(|i| (i % 13) as f32 * 0.25).collect();
        let (_, counter) = spmv::spmv_cpu(&g, &x);
        let cpu_s = counter.seconds(&npar_sim::CostModel::default().cpu, &cpu_cfg);
        let mut gpu = runner::gpu();
        let r = spmv::spmv_gpu(&mut gpu, &g, &x, LoopTemplate::ThreadMapped, &params);
        runner::export_profile(&mut gpu, "baseline_spmv");
        rows.push(Row {
            app: "SpMV".into(),
            cpu_seconds: cpu_s,
            gpu_seconds: r.report.seconds,
            speedup: cpu_s / r.report.seconds,
            paper_speedup: 2.4,
            stalls: r.report.total().stalls,
        });
    }

    rows
}
