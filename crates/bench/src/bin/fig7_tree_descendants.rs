//! Figure 7: Tree Descendants on synthetic trees — speedups of the GPU
//! templates over serial CPU code across outdegree (regular trees) and
//! sparsity (irregular trees), plus profiling data.

use npar_apps::tree_apps::TreeMetric;
use npar_bench::{results, runner, tree_experiment};

fn main() {
    runner::init();
    let (tables, rows) = tree_experiment::run(TreeMetric::Descendants);
    results::save("fig7_tree_descendants", &tables, &rows);
}
