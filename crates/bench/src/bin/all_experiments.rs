//! Run every paper experiment in sequence (the full reproduction sweep):
//! Figures 2, 4, 5, 6, 7, 8, 9, Tables I and II, the baseline-speedup
//! check and the ablations. Each sub-experiment writes its tables under
//! `results/`.

use npar_bench::runner;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "baseline_speedups",
    "fig2_sort",
    "fig4_spmv_blocksize",
    "fig5_sssp",
    "table1_sssp_profile",
    "fig6_lbthres",
    "table2_warp_eff",
    "fig7_tree_descendants",
    "fig8_tree_heights",
    "fig9_recursive_bfs",
    "ablation_dp_overhead",
    "ablation_lockstep",
];

fn main() {
    runner::init();
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("bin dir");
    let flags: Vec<String> = std::env::args().skip(1).collect();
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n##### {exp} #####");
        let status = Command::new(dir.join(exp))
            .args(&flags)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {exp}: {e}"));
        if !status.success() {
            eprintln!("experiment {exp} failed: {status}");
            failures.push(*exp);
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; tables written to results/");
    } else {
        panic!("experiments failed: {failures:?}");
    }
}
