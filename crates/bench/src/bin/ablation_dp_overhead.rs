//! Ablation: sensitivity of the dynamic-parallelism results to the
//! launch-overhead constants (DESIGN.md §6). The dpar-naive pathology and
//! the rec-hier advantage must be *robust* across plausible Kepler
//! overheads, not an artifact of one constant: this sweep scales the
//! device-launch service/latency pair from one quarter to four times the
//! default and reports the SSSP template ordering and the tree-template
//! ordering at each point.
//!
//! The dpar-naive column is additionally re-run with the timing-pass fast
//! paths disabled (`--fast-forward=off` semantics, DESIGN.md §11) as a
//! standing ablation of the scheduler mechanisms on the launch-storm
//! workload; the modeled seconds must be identical — the fast paths are a
//! host-side speedup, not a model change — and the sweep asserts so.

use npar_apps::{sssp, tree_apps};
use npar_bench::{datasets, results, runner, table};
use npar_core::{LoopParams, LoopTemplate, RecParams, RecTemplate};
use npar_sim::{CostModel, DeviceConfig, Gpu};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    overhead_scale: f64,
    sssp_baseline: f64,
    sssp_dbuf_shared: f64,
    sssp_dpar_opt: f64,
    sssp_dpar_naive: f64,
    /// dpar-naive with the timing-pass fast paths disabled: must equal
    /// `sssp_dpar_naive` exactly (determinism contract).
    sssp_dpar_naive_ffoff: f64,
    tree_flat: f64,
    tree_rec_hier: f64,
    tree_rec_naive: f64,
}

fn main() {
    runner::init();
    let g = datasets::citeseer();
    let tree = datasets::fig78_tree(128, 0);
    let scales = vec![0.25f64, 0.5, 1.0, 2.0, 4.0];

    let rows: Vec<Row> = runner::parallel_map(scales, move |scale| {
        let g = g.clone();
        let tree = tree.clone();
        runner::with_big_stack(move || {
            let mut cost = CostModel::default();
            cost.device_launch_service_cycles *= scale;
            cost.device_launch_latency_cycles *= scale;
            cost.device_launch_issue_cycles *= scale;

            let sssp_time_ff = |template, fast_forward: bool| {
                let mut gpu =
                    runner::with_check_flag(Gpu::new(DeviceConfig::kepler_k20(), cost.clone()))
                        .with_fast_forward(fast_forward);
                sssp::sssp_gpu(&mut gpu, &g, 0, template, &LoopParams::with_lb_thres(32))
                    .report
                    .seconds
            };
            let sssp_time = |template| sssp_time_ff(template, runner::fast_forward_enabled());
            let tree_time = |template| {
                let mut gpu =
                    runner::with_check_flag(Gpu::new(DeviceConfig::kepler_k20(), cost.clone()));
                tree_apps::tree_gpu(
                    &mut gpu,
                    &tree,
                    tree_apps::TreeMetric::Descendants,
                    template,
                    &RecParams::default(),
                )
                .report
                .seconds
            };
            let dpar_naive = sssp_time_ff(LoopTemplate::DparNaive, true);
            let dpar_naive_ffoff = sssp_time_ff(LoopTemplate::DparNaive, false);
            assert_eq!(
                dpar_naive.to_bits(),
                dpar_naive_ffoff.to_bits(),
                "fast paths changed modeled time at scale {scale}"
            );
            Row {
                overhead_scale: scale,
                sssp_baseline: sssp_time(LoopTemplate::ThreadMapped),
                sssp_dbuf_shared: sssp_time(LoopTemplate::DbufShared),
                sssp_dpar_opt: sssp_time(LoopTemplate::DparOpt),
                sssp_dpar_naive: dpar_naive,
                sssp_dpar_naive_ffoff: dpar_naive_ffoff,
                tree_flat: tree_time(RecTemplate::Flat),
                tree_rec_hier: tree_time(RecTemplate::RecHier),
                tree_rec_naive: tree_time(RecTemplate::RecNaive),
            }
        })
    });

    let mut t = table::Table::new(
        "Ablation — DP overhead scale vs template times",
        &[
            "scale",
            "sssp base",
            "dbuf-shared",
            "dpar-opt",
            "dpar-naive",
            "naive (ffwd off)",
            "tree flat",
            "rec-hier",
            "rec-naive",
        ],
    );
    for r in &rows {
        t.row(vec![
            format!("{:.2}x", r.overhead_scale),
            table::ms(r.sssp_baseline),
            table::ms(r.sssp_dbuf_shared),
            table::ms(r.sssp_dpar_opt),
            table::ms(r.sssp_dpar_naive),
            table::ms(r.sssp_dpar_naive_ffoff),
            table::ms(r.tree_flat),
            table::ms(r.tree_rec_hier),
            table::ms(r.tree_rec_naive),
        ]);
    }
    results::save("ablation_dp_overhead", &[t], &rows);
}
