//! Serving load test: replay a heavy mixed workload against `npar-serve`
//! and gate the cache architecture in CI (SERVING.md walks through a run).
//!
//! The mix covers the four traffic profiles the service exists for: regular
//! waves (memo-friendly), divergent DP storms (`divergent` + `dp-storm`,
//! cache-hostile plus device-side launches), a HyperQ-style stream storm,
//! and Monte-Carlo replication batches. Four phases:
//!
//! 1. **cold** — every unique request once, nothing cached; each job is
//!    simulated fresh. This produces the reference report bytes.
//! 2. **dup-heavy** — the same uniques replayed `DUP`x each, interleaved,
//!    plus a small novel slice submitted in rapid triplicate so in-flight
//!    dedupe (not just the result cache) shows up in the stats.
//! 3. **spill** — `Service::join` writes the persistent cache.
//! 4. **warm** — a fresh service boots from the spill and replays every
//!    unique request; all must answer from the restored cache.
//!
//! Hard structural gates (always on, baseline-independent):
//! - dup-heavy throughput >= 3x cold throughput (the dedupe/cache payoff),
//! - warm cache-hit rate >= 90%,
//! - every warm and dup response byte-identical to its cold reference,
//! - no shed/timeout/failure anywhere in the run.
//!
//! Baseline gates (like simbench): throughput may not halve and p99 may not
//! triple versus the checked-in `BENCH_serve_baseline.json`; refresh with
//! `--update-baseline`. Writes `results/BENCH_serve.{txt,md,json}`.

use std::collections::BTreeMap;
use std::time::Instant;

use npar_bench::{results, runner, table};
use npar_serve::{workload::Dataset, Request, Response, Service, Source};
use npar_sim::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Duplicates per unique request in the dup-heavy phase.
const DUP: usize = 8;
/// Novel requests submitted in rapid triplicate during the dup-heavy phase
/// (exercises in-flight dedupe while the fresh simulation runs).
const NOVEL: u64 = 4;

/// The unique request mix: 24 requests across the four traffic profiles,
/// all on the paper's K20.
fn mix() -> Vec<Request> {
    let mut reqs = Vec::new();
    let shape = |n: u64, grid: u32, block: u32, launches: u32, streams: u32, salt: u64| Dataset {
        n,
        grid,
        block,
        launches,
        streams,
        salt,
    };
    for salt in 0..6 {
        reqs.push(Request {
            kernel: "regular-wave".into(),
            device: DeviceConfig::kepler_k20(),
            dataset: shape(1 << 14, 24, 128, 4, 1, salt),
        });
    }
    for salt in 0..5 {
        reqs.push(Request {
            kernel: "divergent".into(),
            device: DeviceConfig::kepler_k20(),
            dataset: shape(1 << 14, 16, 128, 2, 1, salt),
        });
        reqs.push(Request {
            kernel: "dp-storm".into(),
            device: DeviceConfig::kepler_k20(),
            dataset: shape(1 << 12, 8, 64, 2, 1, salt),
        });
    }
    for salt in 0..4 {
        reqs.push(Request {
            kernel: "stream-storm".into(),
            device: DeviceConfig::kepler_k20(),
            dataset: shape(1 << 12, 8, 64, 6, 4, salt),
        });
        reqs.push(Request {
            kernel: "monte-carlo".into(),
            device: DeviceConfig::kepler_k20(),
            dataset: shape(1 << 13, 16, 128, 2, 1, salt * 131),
        });
    }
    reqs
}

/// The novel slice for the dup-heavy phase: salts no `mix()` request uses.
fn novel_mix() -> Vec<Request> {
    (0..NOVEL)
        .map(|i| Request {
            kernel: "monte-carlo".into(),
            device: DeviceConfig::kepler_k20(),
            dataset: Dataset {
                n: 1 << 13,
                grid: 16,
                block: 128,
                launches: 2,
                streams: 1,
                salt: 1_000_003 + i,
            },
        })
        .collect()
}

/// One measured phase: per-job latencies, wall time, and the response
/// bytes per content key (for the byte-identity gates).
struct Phase {
    wall: f64,
    latencies_ms: Vec<f64>,
    sources: Vec<Source>,
    bytes: BTreeMap<u64, String>,
}

/// Submit `batch` in order, then collect every response in order. Latency
/// per job runs submit -> response (queue wait included). Panics on any
/// shed/timeout/failure — the loadtest sizes its queues so none may occur.
fn run_phase(service: &Service, batch: &[Request]) -> Phase {
    let start = Instant::now();
    let mut pending = Vec::with_capacity(batch.len());
    for req in batch {
        let ticket = service
            .submit(req)
            .unwrap_or_else(|e| panic!("loadtest submit failed: {e}"));
        pending.push((ticket, Instant::now()));
    }
    let mut latencies_ms = Vec::with_capacity(batch.len());
    let mut sources = Vec::with_capacity(batch.len());
    let mut bytes = BTreeMap::new();
    for (ticket, submitted) in pending {
        let key = ticket.key;
        match ticket.wait() {
            Response::Done { source, report } => {
                latencies_ms.push(submitted.elapsed().as_secs_f64() * 1e3);
                sources.push(source);
                bytes
                    .entry(key)
                    .or_insert_with(|| serde_json::to_string(&*report).expect("report serializes"));
            }
            other => panic!("loadtest job {key:#018x} not served: {other:?}"),
        }
    }
    Phase {
        wall: start.elapsed().as_secs_f64(),
        latencies_ms,
        sources,
        bytes,
    }
}

/// Percentile over unsorted samples (nearest-rank).
fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    // IEEE-754 bit patterns order like the values for non-negative floats,
    // and latencies are non-negative by construction.
    sorted.sort_unstable_by_key(|v| v.to_bits());
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[derive(Serialize)]
struct PhaseRow {
    phase: String,
    jobs: usize,
    wall_seconds: f64,
    throughput_jobs_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    fresh: usize,
    dedup: usize,
    cache: usize,
}

impl PhaseRow {
    fn new(phase: &str, p: &Phase) -> PhaseRow {
        let count = |want: Source| p.sources.iter().filter(|&&s| s == want).count();
        PhaseRow {
            phase: phase.to_string(),
            jobs: p.sources.len(),
            wall_seconds: p.wall,
            throughput_jobs_per_sec: p.sources.len() as f64 / p.wall.max(1e-9),
            p50_ms: percentile(&p.latencies_ms, 50.0),
            p99_ms: percentile(&p.latencies_ms, 99.0),
            fresh: count(Source::Fresh),
            dedup: count(Source::Dedup),
            cache: count(Source::Cache),
        }
    }
}

#[derive(Serialize)]
struct Rows {
    phases: Vec<PhaseRow>,
    cold_stats: npar_serve::ServeStats,
    warm_stats: npar_serve::ServeStats,
    dup_speedup: f64,
    warm_hit_rate: f64,
}

#[derive(Serialize, Deserialize)]
struct BaselineRow {
    phase: String,
    throughput_jobs_per_sec: f64,
    p99_ms: f64,
}

#[derive(Serialize, Deserialize)]
struct Baseline {
    rows: Vec<BaselineRow>,
}

/// Checked in next to the bench crate, like `BENCH_sim_baseline.json`.
fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_serve_baseline.json")
}

fn main() {
    runner::init();

    // The service under test honours the serving flags; the loadtest fixes
    // what must be fixed for a meaningful benchmark: a cache directory (the
    // warm phase needs the spill; default under results/), a queue deep
    // enough that nothing sheds, and no timeout unless one was asked for
    // (queue wait counts against the deadline, and a benchmark backlog is
    // not a misbehaving job).
    let mut cfg = runner::serve_config();
    if cfg.cache_dir.is_none() {
        cfg.cache_dir = Some(results::results_dir().join("serve_cache"));
    }
    let dir = cfg.cache_dir.clone().expect("cache dir fixed above");
    if runner::parsed().queue.is_none() {
        cfg.queue_cap = 1 << 12;
    }
    if runner::parsed().job_timeout_ms.is_none() {
        cfg.timeout = None;
    }
    // The cold phase must actually be cold: drop any previous spill.
    let _ = std::fs::remove_file(npar_serve::cache::spill_path(&dir));

    let uniques = mix();
    let novels = novel_mix();

    // Phase 1: cold replay — every unique once, simulated fresh.
    let service = Service::start(cfg.clone());
    let cold = run_phase(&service, &uniques);
    assert!(
        cold.sources.iter().all(|&s| s == Source::Fresh),
        "cold phase must simulate everything fresh"
    );

    // Phase 2: dup-heavy replay — DUP copies of each unique (interleaved),
    // plus the novel slice in rapid triplicate for in-flight dedupe.
    let mut dup_batch = Vec::new();
    for _ in 0..DUP {
        dup_batch.extend(uniques.iter().cloned());
    }
    for req in &novels {
        for _ in 0..3 {
            dup_batch.push(req.clone());
        }
    }
    let dup = run_phase(&service, &dup_batch);
    let cold_stats = service.join();

    // Phase 4: warm restart — a fresh fleet boots from the spill and
    // replays every unique request (mix + novels).
    let service = Service::start(cfg.clone());
    let mut warm_batch = uniques.clone();
    warm_batch.extend(novels.iter().cloned());
    let warm = run_phase(&service, &warm_batch);
    let warm_stats = service.join();

    // --- structural gates -------------------------------------------------
    let mut failed = false;

    let cold_tput = cold.sources.len() as f64 / cold.wall.max(1e-9);
    let dup_tput = dup.sources.len() as f64 / dup.wall.max(1e-9);
    let dup_speedup = dup_tput / cold_tput.max(1e-9);
    if dup_speedup < 3.0 {
        eprintln!(
            "REGRESSION: dup-heavy replay {dup_tput:.0} jobs/s is only {dup_speedup:.2}x of cold \
             {cold_tput:.0} jobs/s (gate: >= 3x)"
        );
        failed = true;
    }

    let warm_hits = warm.sources.iter().filter(|&&s| s == Source::Cache).count();
    let warm_hit_rate = warm_hits as f64 / warm.sources.len() as f64;
    if warm_hit_rate < 0.9 {
        eprintln!(
            "REGRESSION: warm restart answered only {warm_hits}/{} from the restored cache \
             (gate: >= 90%)",
            warm.sources.len()
        );
        failed = true;
    }

    // Byte-identity: every response in the dup and warm phases must match
    // the cold reference for its key (novels reference their first serve in
    // the dup phase).
    let mut reference = cold.bytes.clone();
    for (key, bytes) in &dup.bytes {
        match reference.get(key) {
            Some(want) if want != bytes => {
                eprintln!("REGRESSION: dup-phase report for {key:#018x} differs from cold run");
                failed = true;
            }
            Some(_) => {}
            None => {
                reference.insert(*key, bytes.clone());
            }
        }
    }
    for (key, bytes) in &warm.bytes {
        match reference.get(key) {
            Some(want) if want != bytes => {
                eprintln!("REGRESSION: warm-phase report for {key:#018x} differs from cold run");
                failed = true;
            }
            Some(_) => {}
            None => {
                eprintln!("REGRESSION: warm phase served unknown key {key:#018x}");
                failed = true;
            }
        }
    }

    // Nothing may shed, time out, or fail in a correctly sized loadtest,
    // and the dup phase must show real in-flight dedupe.
    for (tag, stats) in [("cold+dup", &cold_stats), ("warm", &warm_stats)] {
        if stats.shed + stats.timeout + stats.failed > 0 {
            eprintln!("REGRESSION: {tag} service lost jobs: {stats}");
            failed = true;
        }
    }
    if cold_stats.deduped == 0 {
        eprintln!("REGRESSION: rapid novel triplicates produced no in-flight dedupe");
        failed = true;
    }

    // --- report -----------------------------------------------------------
    let rows = Rows {
        phases: vec![
            PhaseRow::new("cold", &cold),
            PhaseRow::new("dup-heavy", &dup),
            PhaseRow::new("warm", &warm),
        ],
        cold_stats,
        warm_stats,
        dup_speedup,
        warm_hit_rate,
    };

    let mut t = table::Table::new(
        "Serving load test — cold vs dup-heavy vs warm restart",
        &[
            "phase", "jobs", "wall", "jobs/s", "p50", "p99", "fresh", "dedup", "cache",
        ],
    );
    for r in &rows.phases {
        t.row(vec![
            r.phase.clone(),
            r.jobs.to_string(),
            table::ms(r.wall_seconds),
            format!("{:.0}/s", r.throughput_jobs_per_sec),
            format!("{:.2}ms", r.p50_ms),
            format!("{:.2}ms", r.p99_ms),
            r.fresh.to_string(),
            r.dedup.to_string(),
            r.cache.to_string(),
        ]);
    }
    results::save("BENCH_serve", &[t], &rows);
    println!(
        "dup-heavy speedup {dup_speedup:.1}x | warm hit rate {:.0}% | cold+dup stats: {} | warm stats: {}",
        warm_hit_rate * 100.0,
        rows.cold_stats,
        rows.warm_stats
    );

    if failed {
        std::process::exit(1);
    }

    // --- baseline gate ----------------------------------------------------
    if runner::update_baseline() {
        let baseline = Baseline {
            rows: rows
                .phases
                .iter()
                .map(|r| BaselineRow {
                    phase: r.phase.clone(),
                    throughput_jobs_per_sec: r.throughput_jobs_per_sec,
                    p99_ms: r.p99_ms,
                })
                .collect(),
        };
        let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
        std::fs::write(baseline_path(), json).expect("write baseline");
        println!("baseline updated: {}", baseline_path().display());
        return;
    }

    match std::fs::read_to_string(baseline_path()) {
        Ok(text) => {
            let baseline: Baseline = serde_json::from_str(&text).expect("parse baseline");
            let mut regressed = false;
            for b in &baseline.rows {
                let Some(r) = rows.phases.iter().find(|r| r.phase == b.phase) else {
                    continue;
                };
                // Throughput may not halve (the simbench slack, absorbing
                // host noise while catching real serving-path breaks)...
                if r.throughput_jobs_per_sec * 2.0 < b.throughput_jobs_per_sec {
                    eprintln!(
                        "REGRESSION: {} throughput {:.0} jobs/s vs baseline {:.0} jobs/s (>2x slower)",
                        b.phase, r.throughput_jobs_per_sec, b.throughput_jobs_per_sec
                    );
                    regressed = true;
                }
                // ...and tail latency may not triple (queue-wait dominates
                // p99 under a deep backlog, so the slack is wider).
                if b.p99_ms > 0.0 && r.p99_ms > b.p99_ms * 3.0 {
                    eprintln!(
                        "REGRESSION: {} p99 {:.2}ms vs baseline {:.2}ms (>3x slower)",
                        b.phase, r.p99_ms, b.p99_ms
                    );
                    regressed = true;
                }
            }
            if regressed {
                std::process::exit(1);
            }
            println!("serving throughput and p99 within baseline gates");
        }
        Err(_) => {
            eprintln!(
                "no baseline at {} — run with --update-baseline to record one",
                baseline_path().display()
            );
        }
    }
}
