//! Table II: warp execution efficiency of the dbuf-shared template across
//! lbTHRES settings for SSSP, BC, PageRank and SpMV, against the
//! thread-mapped baseline. The paper's trend: the lower the threshold, the
//! more load balancing and the higher the warp efficiency; dbuf-shared
//! always improves on the baseline.

use npar_apps::{bc, pagerank, spmv, sssp};
use npar_bench::{datasets, results, runner, table};
use npar_core::{LoopParams, LoopTemplate};
use serde::Serialize;

const LB_VALUES: [usize; 4] = [32, 64, 256, 1024];

#[derive(Serialize)]
struct Row {
    app: String,
    /// Warp efficiency at each lbTHRES in LB_VALUES order, then baseline.
    warp_eff: Vec<f64>,
    paper: Vec<f64>,
}

fn main() {
    runner::init();
    let paper: &[(&str, [f64; 5])] = &[
        ("SSSP", [0.756, 0.719, 0.453, 0.372, 0.356]),
        ("BC", [0.758, 0.567, 0.171, 0.108, 0.103]),
        ("PageRank", [0.915, 0.870, 0.634, 0.509, 0.508]),
        ("SpMV", [0.944, 0.823, 0.715, 0.515, 0.510]),
    ];

    let apps: Vec<&'static str> = vec!["SSSP", "BC", "PageRank", "SpMV"];
    let rows: Vec<Row> = runner::parallel_map(apps, move |app| {
        let run = |template: LoopTemplate, lb: usize| -> f64 {
            let params = LoopParams::with_lb_thres(lb);
            let mut gpu = runner::gpu();
            let report = match app {
                "SSSP" => {
                    let g = datasets::citeseer();
                    sssp::sssp_gpu(&mut gpu, &g, 0, template, &params).report
                }
                "BC" => {
                    let g = datasets::wiki_vote();
                    let sources = bc::sample_sources(&g, 8);
                    bc::bc_gpu(&mut gpu, &g, &sources, template, &params).report
                }
                "PageRank" => {
                    let g = datasets::citeseer_unweighted();
                    pagerank::pagerank_gpu(&mut gpu, &g, 5, template, &params).report
                }
                "SpMV" => {
                    let g = datasets::citeseer();
                    let x: Vec<f32> = (0..g.num_nodes()).map(|i| (i % 13) as f32 * 0.25).collect();
                    spmv::spmv_gpu(&mut gpu, &g, &x, template, &params).report
                }
                _ => unreachable!(),
            };
            report
                .total_where(|name| !name.contains("sssp-update"))
                .warp_execution_efficiency()
        };
        let mut warp_eff: Vec<f64> = LB_VALUES
            .iter()
            .map(|&lb| run(LoopTemplate::DbufShared, lb))
            .collect();
        warp_eff.push(run(LoopTemplate::ThreadMapped, 32));
        Row {
            app: app.to_string(),
            warp_eff,
            paper: paper
                .iter()
                .find(|(name, _)| *name == app)
                .map(|(_, v)| v.to_vec())
                .unwrap(),
        }
    });

    let mut t = table::Table::new(
        "Table II — dbuf-shared warp execution efficiency vs lbTHRES",
        &[
            "app",
            "32",
            "64",
            "256",
            "1024",
            "baseline",
            "(paper 32)",
            "(paper base)",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.app.clone(),
            table::pct(r.warp_eff[0]),
            table::pct(r.warp_eff[1]),
            table::pct(r.warp_eff[2]),
            table::pct(r.warp_eff[3]),
            table::pct(r.warp_eff[4]),
            table::pct(r.paper[0]),
            table::pct(r.paper[4]),
        ]);
    }
    results::save("table2_warp_eff", &[t], &rows);
}
