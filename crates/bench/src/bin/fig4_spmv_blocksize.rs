//! Figure 4: SpMV — sensitivity of the load-balancing templates to the
//! block size used in the block-mapped portions of the code, under
//! lbTHRES ∈ {64, 128, 192}. The paper's finding: performance is largely
//! insensitive to block size and driven by lbTHRES, with small blocks (64)
//! best for small thresholds.

use npar_apps::spmv;
use npar_bench::{datasets, results, runner, table};
use npar_core::{LoopParams, LoopTemplate};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    template: String,
    lb_thres: usize,
    block_size: u32,
    seconds: f64,
    speedup: f64,
}

fn main() {
    runner::init();
    let g = datasets::citeseer();
    let x: Vec<f32> = (0..g.num_nodes()).map(|i| (i % 13) as f32 * 0.25).collect();

    let base = {
        let g = g.clone();
        let x = x.clone();
        runner::with_big_stack(move || {
            let mut gpu = runner::gpu();
            spmv::spmv_gpu(
                &mut gpu,
                &g,
                &x,
                LoopTemplate::ThreadMapped,
                &LoopParams::default(),
            )
            .report
            .seconds
        })
    };

    // dpar-naive omitted like in the paper's chart ("significantly slower
    // than the other code variants").
    let templates = [
        LoopTemplate::DualQueue,
        LoopTemplate::DbufShared,
        LoopTemplate::DbufGlobal,
        LoopTemplate::DparOpt,
    ];
    let mut jobs = Vec::new();
    for lb in [64usize, 128, 192] {
        for bs in [64u32, 128, 192, 256, 512] {
            for t in templates {
                jobs.push((t, lb, bs));
            }
        }
    }
    let rows: Vec<Row> = runner::parallel_map(jobs, move |(template, lb, bs)| {
        let g = g.clone();
        let x = x.clone();
        runner::with_big_stack(move || {
            let mut gpu = runner::gpu();
            let params = LoopParams {
                lb_thres: lb,
                block_block: bs,
                ..Default::default()
            };
            let r = spmv::spmv_gpu(&mut gpu, &g, &x, template, &params);
            Row {
                template: template.to_string(),
                lb_thres: lb,
                block_size: bs,
                seconds: r.report.seconds,
                speedup: base / r.report.seconds,
            }
        })
    });

    let mut tables = Vec::new();
    for lb in [64usize, 128, 192] {
        let mut t = table::Table::new(
            format!("Figure 4 — SpMV speedup over baseline, lbTHRES={lb} (CiteSeer)"),
            &[
                "block size",
                "dual-queue",
                "dbuf-shared",
                "dbuf-global",
                "dpar-opt",
            ],
        );
        for bs in [64u32, 128, 192, 256, 512] {
            let cell = |name: &str| {
                rows.iter()
                    .find(|r| r.lb_thres == lb && r.block_size == bs && r.template == name)
                    .map(|r| table::fx(r.speedup))
                    .unwrap_or_default()
            };
            t.row(vec![
                bs.to_string(),
                cell("dual-queue"),
                cell("dbuf-shared"),
                cell("dbuf-global"),
                cell("dpar-opt"),
            ]);
        }
        tables.push(t);
    }
    results::save("fig4_spmv_blocksize", &tables, &rows);
}
