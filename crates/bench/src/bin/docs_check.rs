//! Docs-freshness gate: every flag the shared parser accepts must be
//! documented in README.md's flags table.
//!
//! [`runner::KNOWN_FLAGS`] is the contract: `runner::parse` and the table
//! drift independently, and a flag shipped without a row is how operator
//! docs rot. CI runs this binary (see ci.sh); it exits nonzero naming the
//! first missing flag. The runner's own unit tests close the other half of
//! the loop — every `KNOWN_FLAGS` entry must appear in `runner::USAGE` too.

use npar_bench::runner;

fn main() {
    let readme_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(readme_path).expect("read README.md");

    // The flags table: markdown rows whose first cell is a backticked flag.
    let rows: Vec<&str> = readme
        .lines()
        .filter(|l| l.trim_start().starts_with("| `--"))
        .collect();
    if rows.is_empty() {
        eprintln!("DOCS: README.md has no flags table (rows starting with \"| `--\")");
        std::process::exit(1);
    }

    let mut missing = Vec::new();
    for flag in runner::KNOWN_FLAGS {
        // Match on the opening backtick so `--threads` cannot piggyback on
        // the `--timing-threads` row.
        let documented = rows.iter().any(|row| row.contains(&format!("`{flag}")));
        if !documented {
            missing.push(*flag);
        }
    }
    if let Some(first) = missing.first() {
        eprintln!(
            "DOCS: flag {first} is accepted by runner::parse but missing from the README.md \
             flags table (all missing: {})",
            missing.join(", ")
        );
        std::process::exit(1);
    }
    println!(
        "docs_check: all {} flags documented in README.md",
        runner::KNOWN_FLAGS.len()
    );
}
