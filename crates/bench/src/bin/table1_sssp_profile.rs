//! Table I: profiling data collected on SSSP at lbTHRES = 32 — warp
//! execution efficiency, global load efficiency and global store
//! efficiency for the baseline and every load-balancing template, plus the
//! npar-prof stall attribution (where each template's cycles went). Run
//! with `--profile` to also export per-template Chrome traces.

use npar_apps::sssp;
use npar_bench::{datasets, results, runner, table};
use npar_core::{LoopParams, LoopTemplate};
use npar_sim::StallCycles;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    template: String,
    warp_efficiency: f64,
    gld_efficiency: f64,
    gst_efficiency: f64,
    paper_warp: f64,
    paper_gld: f64,
    paper_gst: f64,
    /// Raw stall-attribution cycles (see `npar_sim::StallCycles`).
    stalls: StallCycles,
}

fn main() {
    runner::init();
    let g = datasets::citeseer();
    let paper: &[(&str, f64, f64, f64)] = &[
        ("thread-mapped", 0.356, 0.158, 0.032),
        ("dual-queue", 0.749, 0.791, 0.048),
        ("dbuf-shared", 0.757, 0.943, 0.504),
        ("dbuf-global", 0.723, 0.891, 0.085),
        ("dpar-naive", 0.253, 0.455, 0.163),
        ("dpar-opt", 0.702, 0.632, 0.109),
    ];
    let templates = [
        LoopTemplate::ThreadMapped,
        LoopTemplate::DualQueue,
        LoopTemplate::DbufShared,
        LoopTemplate::DbufGlobal,
        LoopTemplate::DparNaive,
        LoopTemplate::DparOpt,
    ];
    let g2 = g.clone();
    let rows: Vec<Row> = runner::parallel_map(templates.to_vec(), move |template| {
        let g = g2.clone();
        runner::with_big_stack(move || {
            let mut gpu = runner::gpu();
            let r = sssp::sssp_gpu(&mut gpu, &g, 0, template, &LoopParams::with_lb_thres(32));
            runner::export_profile(&mut gpu, &format!("table1_sssp_{template}"));
            // Profile the template's own kernels like the paper's nvprof
            // tables; the shared (uniform, fully coalesced) update kernel
            // would dilute every column.
            let m = r.report.total_where(|name| !name.contains("sssp-update"));
            let p = paper
                .iter()
                .find(|(name, ..)| *name == template.label())
                .copied()
                .unwrap();
            Row {
                template: template.to_string(),
                warp_efficiency: m.warp_execution_efficiency(),
                gld_efficiency: m.gld_efficiency(),
                gst_efficiency: m.gst_efficiency(),
                paper_warp: p.1,
                paper_gld: p.2,
                paper_gst: p.3,
                stalls: m.stalls,
            }
        })
    });

    let mut t = table::Table::new(
        "Table I — SSSP profiling at lbTHRES=32 (measured vs paper)",
        &[
            "template", "warp_eff", "(paper)", "gld_eff", "(paper)", "gst_eff", "(paper)",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.template.clone(),
            table::pct(r.warp_efficiency),
            table::pct(r.paper_warp),
            table::pct(r.gld_efficiency),
            table::pct(r.paper_gld),
            table::pct(r.gst_efficiency),
            table::pct(r.paper_gst),
        ]);
    }

    // npar-prof stall attribution: where each template's cycles go, as
    // shares of the attributed total (compute + ... + barrier).
    let mut s = table::Table::new(
        "Table I (cont.) — stall attribution, % of attributed cycles",
        &[
            "template", "compute", "diverge", "gmem", "shared", "atomic", "launch", "barrier",
        ],
    );
    for r in &rows {
        let total = r.stalls.total().max(f64::MIN_POSITIVE);
        let mut cells = vec![r.template.clone()];
        cells.extend(r.stalls.named().iter().map(|(_, c)| table::pct(c / total)));
        s.row(cells);
    }
    results::save("table1_sssp_profile", &[t, s], &rows);
}
