//! Ablation: lockstep SIMT alignment vs a naive max-lane timing model
//! (DESIGN.md §6). Under max-lane timing there is no divergence to fix, so
//! the paper's load-balancing speedups should largely vanish — showing
//! they come from the modeled mechanism, not from the cost constants.

use npar_apps::sssp;
use npar_bench::{datasets, results, runner, table};
use npar_core::{LoopParams, LoopTemplate};
use npar_sim::{CostModel, DeviceConfig, DivergenceModel, Gpu};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    baseline_seconds: f64,
    dbuf_shared_seconds: f64,
    dual_queue_seconds: f64,
    dbuf_shared_speedup: f64,
    dual_queue_speedup: f64,
    baseline_warp_eff: f64,
}

fn main() {
    runner::init();
    let g = datasets::citeseer();
    let models = vec![DivergenceModel::Lockstep, DivergenceModel::MaxLane];
    let rows: Vec<Row> = runner::parallel_map(models, move |model| {
        let g = g.clone();
        runner::with_big_stack(move || {
            let cost = CostModel {
                divergence: model,
                ..Default::default()
            };
            let run = |template| {
                let mut gpu =
                    runner::with_check_flag(Gpu::new(DeviceConfig::kepler_k20(), cost.clone()));
                sssp::sssp_gpu(&mut gpu, &g, 0, template, &LoopParams::with_lb_thres(32))
            };
            let base = run(LoopTemplate::ThreadMapped);
            let dbuf = run(LoopTemplate::DbufShared);
            let dq = run(LoopTemplate::DualQueue);
            Row {
                model: format!("{model:?}"),
                baseline_seconds: base.report.seconds,
                dbuf_shared_seconds: dbuf.report.seconds,
                dual_queue_seconds: dq.report.seconds,
                dbuf_shared_speedup: base.report.seconds / dbuf.report.seconds,
                dual_queue_speedup: base.report.seconds / dq.report.seconds,
                baseline_warp_eff: base
                    .report
                    .total_where(|n| !n.contains("sssp-update"))
                    .warp_execution_efficiency(),
            }
        })
    });

    let mut t = table::Table::new(
        "Ablation — SSSP template speedups under lockstep vs max-lane timing",
        &[
            "divergence model",
            "baseline",
            "base warp_eff",
            "dbuf-shared",
            "(speedup)",
            "dual-queue",
            "(speedup)",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.model.clone(),
            table::ms(r.baseline_seconds),
            table::pct(r.baseline_warp_eff),
            table::ms(r.dbuf_shared_seconds),
            table::fx(r.dbuf_shared_speedup),
            table::ms(r.dual_queue_seconds),
            table::fx(r.dual_queue_speedup),
        ]);
    }
    results::save("ablation_lockstep", &[t], &rows);
}
