//! Figure 8: Tree Heights on synthetic trees — same experimental design as
//! Figure 7 with the max-reduction metric.

use npar_apps::tree_apps::TreeMetric;
use npar_bench::{results, runner, tree_experiment};

fn main() {
    runner::init();
    let (tables, rows) = tree_experiment::run(TreeMetric::Heights);
    results::save("fig8_tree_heights", &tables, &rows);
}
