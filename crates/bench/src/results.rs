//! Persisting experiment outputs: every binary appends its tables to
//! `results/<experiment>.{txt,md,json}` so EXPERIMENTS.md can cite them.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

use crate::table::Table;

/// Directory the harness writes into (workspace-root `results/`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("NPAR_RESULTS").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    fs::create_dir_all(&p).expect("create results directory");
    p
}

/// Write an experiment's rendered tables and raw rows.
pub fn save<T: Serialize>(experiment: &str, tables: &[Table], raw: &T) {
    let dir = results_dir();
    let text: String = tables.iter().map(|t| t.render() + "\n").collect();
    let md: String = tables.iter().map(|t| t.markdown() + "\n").collect();
    fs::write(dir.join(format!("{experiment}.txt")), &text).expect("write txt");
    fs::write(dir.join(format!("{experiment}.md")), &md).expect("write md");
    let json = serde_json::to_string_pretty(raw).expect("serialize results");
    fs::write(dir.join(format!("{experiment}.json")), json).expect("write json");
    print!("{text}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_writes_three_files() {
        let tmp = std::env::temp_dir().join("npar-results-test");
        std::env::set_var("NPAR_RESULTS", &tmp);
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        save("unit", &[t], &vec![1, 2, 3]);
        for ext in ["txt", "md", "json"] {
            assert!(tmp.join(format!("unit.{ext}")).exists());
        }
        std::env::remove_var("NPAR_RESULTS");
        let _ = fs::remove_dir_all(tmp);
    }
}
