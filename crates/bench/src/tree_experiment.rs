//! Shared driver for the Figure 7 (Tree Descendants) and Figure 8 (Tree
//! Heights) experiments: speedups of the flat / rec-naive / rec-hier GPU
//! templates over the *better* serial CPU implementation, across regular
//! trees of growing outdegree and irregular trees of growing sparsity,
//! plus the paper's profiling panel (warp utilization, atomics, kernel
//! calls).

use npar_apps::tree_apps::{tree_cpu_iterative, tree_cpu_recursive, tree_gpu, TreeMetric};
use npar_core::{RecParams, RecTemplate};
use npar_sim::{CostModel, CpuConfig};
use serde::Serialize;

use crate::table::{count, fx, pct, Table};
use crate::{datasets, runner};

/// One configuration's outcome across the three templates.
#[derive(Serialize)]
pub struct TreeRow {
    /// Sweep label ("outdegree 512" or "sparsity 2").
    pub config: String,
    /// Tree size.
    pub nodes: usize,
    /// Serial CPU seconds (better of recursive / iterative).
    pub cpu_seconds: f64,
    /// Per-template: (label, seconds, speedup over CPU, warp efficiency,
    /// atomic count, kernel calls).
    pub variants: Vec<TreeVariant>,
}

/// One GPU template's measurements.
#[derive(Serialize)]
pub struct TreeVariant {
    /// Template label.
    pub template: String,
    /// Modeled GPU seconds.
    pub seconds: f64,
    /// Speedup over the serial CPU reference (< 1 is a slowdown).
    pub speedup: f64,
    /// Warp execution efficiency.
    pub warp_efficiency: f64,
    /// Global + shared atomic operations.
    pub atomics: u64,
    /// Total kernel launches (host + nested).
    pub kernel_calls: u64,
}

/// Run the full Figure 7/8 sweep for `metric`.
pub fn run(metric: TreeMetric) -> (Vec<Table>, Vec<TreeRow>) {
    let regular: Vec<(String, u32, u32)> = [32u32, 64, 128, 256, 512]
        .iter()
        .map(|&d| (format!("outdegree {d}"), d, 0))
        .collect();
    let irregular: Vec<(String, u32, u32)> = (0..=4u32)
        .map(|s| (format!("sparsity {s}"), 512, s))
        .collect();

    let sweep = |configs: Vec<(String, u32, u32)>| -> Vec<TreeRow> {
        runner::parallel_map(configs, move |(label, outdeg, sparsity)| {
            runner::with_big_stack(move || one_config(metric, label, outdeg, sparsity))
        })
    };
    let reg_rows = sweep(regular);
    let irr_rows = sweep(irregular);

    let name = match metric {
        TreeMetric::Descendants => "Figure 7 — Tree Descendants",
        TreeMetric::Heights => "Figure 8 — Tree Heights",
    };
    let mut tables = vec![
        speedup_table(&format!("{name} (a): regular trees, sparsity=0"), &reg_rows),
        speedup_table(
            &format!("{name} (b): irregular trees, outdegree=512"),
            &irr_rows,
        ),
        profile_table(&format!("{name} (c): profiling data"), &reg_rows, &irr_rows),
    ];
    // Extra panel: streams variants on the largest regular tree, matching
    // the Section III.C streams discussion.
    tables.push(streams_table(metric));

    if runner::analyze_enabled() {
        print_advice(metric, &reg_rows);
    }

    let mut rows = reg_rows;
    rows.extend(irr_rows);
    (tables, rows)
}

/// `--analyze`: probe the naive recursive template on the largest regular
/// tree, print the npar-analyze report, and compare the advisor's pick
/// against the measured best template of that configuration.
fn print_advice(metric: TreeMetric, reg_rows: &[TreeRow]) {
    let analysis = runner::with_big_stack(move || {
        let tree = datasets::fig78_tree(512, 0);
        let mut gpu = runner::gpu();
        let _ = tree_gpu(
            &mut gpu,
            &tree,
            metric,
            RecTemplate::RecNaive,
            &RecParams::default(),
        );
        gpu.analysis()
    });
    if analysis.is_empty() {
        return;
    }
    println!("\nnpar-analyze [rec-naive probe, outdegree 512]\n{analysis}");
    let Some(row) = reg_rows.iter().find(|r| r.config == "outdegree 512") else {
        return;
    };
    let Some(best) = row
        .variants
        .iter()
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
    else {
        return;
    };
    let Some(k) = analysis
        .kernels
        .iter()
        .filter(|k| k.launch_shape.spawned_grids > 0)
        .max_by_key(|k| k.blocks)
    else {
        return;
    };
    let advice = k.advise();
    // The advisor speaks the paper's generic template vocabulary; map it
    // onto the tree apps' three recursion templates for the comparison.
    let mapped = match advice.template {
        "rec-hier" => "rec-hier",
        "dpar" | "dpar-thres" => "rec-naive",
        "thread-mapped" => "flat",
        other => other,
    };
    let verdict = if mapped == best.template {
        "agree"
    } else {
        "DISAGREE"
    };
    println!(
        "advisor on `{}`: {} (-> {}) | measured best: {} -> {}",
        k.kernel, advice.template, mapped, best.template, verdict
    );
}

fn one_config(metric: TreeMetric, config: String, outdegree: u32, sparsity: u32) -> TreeRow {
    let tree = datasets::fig78_tree(outdegree, sparsity);
    let cost = CostModel::default();
    let cpu_cfg = CpuConfig::xeon_e5_2620();
    let (_, rec_counter) = tree_cpu_recursive(&tree, metric);
    let (_, it_counter) = tree_cpu_iterative(&tree, metric);
    let cpu_seconds = rec_counter
        .seconds(&cost.cpu, &cpu_cfg)
        .min(it_counter.seconds(&cost.cpu, &cpu_cfg));

    let fig = match metric {
        TreeMetric::Descendants => "fig7",
        TreeMetric::Heights => "fig8",
    };
    let variants = RecTemplate::ALL
        .iter()
        .map(|&template| {
            let mut gpu = crate::runner::gpu();
            let r = tree_gpu(&mut gpu, &tree, metric, template, &RecParams::default());
            crate::runner::export_profile(&mut gpu, &format!("{fig}_{config}_{template}"));
            let m = r.report.total();
            TreeVariant {
                template: template.to_string(),
                seconds: r.report.seconds,
                speedup: cpu_seconds / r.report.seconds,
                warp_efficiency: m.warp_execution_efficiency(),
                atomics: m.atomics(),
                kernel_calls: r.report.host_launches + r.report.device_launches,
            }
        })
        .collect();

    TreeRow {
        config,
        nodes: tree.num_nodes(),
        cpu_seconds,
        variants,
    }
}

fn speedup_table(title: &str, rows: &[TreeRow]) -> Table {
    let mut t = Table::new(title, &["config", "nodes", "flat", "rec-naive", "rec-hier"]);
    for r in rows {
        let cell = |name: &str| {
            r.variants
                .iter()
                .find(|v| v.template == name)
                .map(|v| fx(v.speedup))
                .unwrap_or_default()
        };
        t.row(vec![
            r.config.clone(),
            r.nodes.to_string(),
            cell("flat"),
            cell("rec-naive"),
            cell("rec-hier"),
        ]);
    }
    t
}

fn profile_table(title: &str, reg: &[TreeRow], irr: &[TreeRow]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "config",
            "flat warp",
            "flat atomics",
            "naive warp",
            "naive kcalls",
            "hier warp",
            "hier atomics",
            "hier kcalls",
        ],
    );
    for r in reg.iter().chain(irr) {
        let v = |name: &str| r.variants.iter().find(|v| v.template == name).unwrap();
        let (flat, naive, hier) = (v("flat"), v("rec-naive"), v("rec-hier"));
        t.row(vec![
            r.config.clone(),
            pct(flat.warp_efficiency),
            count(flat.atomics),
            pct(naive.warp_efficiency),
            count(naive.kernel_calls),
            pct(hier.warp_efficiency),
            count(hier.atomics),
            count(hier.kernel_calls),
        ]);
    }
    t
}

fn streams_table(metric: TreeMetric) -> Table {
    let tree = datasets::fig78_tree(512, 0);
    let mut t = Table::new(
        format!(
            "{} — per-block streams on nested launches (outdegree 512)",
            match metric {
                TreeMetric::Descendants => "Tree Descendants",
                TreeMetric::Heights => "Tree Heights",
            }
        ),
        &["template", "1 stream", "2 streams", "4 streams"],
    );
    for template in [RecTemplate::RecNaive, RecTemplate::RecHier] {
        let mut cells = vec![template.to_string()];
        for streams in [1u32, 2, 4] {
            let tree = tree.clone();
            let secs = runner::with_big_stack(move || {
                let mut gpu = crate::runner::gpu();
                tree_gpu(
                    &mut gpu,
                    &tree,
                    metric,
                    template,
                    &RecParams::with_streams(streams),
                )
                .report
                .seconds
            });
            cells.push(crate::table::ms(secs));
        }
        t.row(cells);
    }
    t
}
