//! Execution helpers for the experiment binaries.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::thread;

use npar_sim::{CheckLevel, Gpu};

/// Hazard-checker severity requested on the command line. Every experiment
/// binary accepts `--check` (or `--check=warn`) to record hazards while the
/// runs continue, and `--check=strict` to abort an experiment on the first
/// detected hazard. Unknown arguments are ignored — the experiments have no
/// other flags.
pub fn check_level() -> CheckLevel {
    static LEVEL: OnceLock<CheckLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let mut level = CheckLevel::Off;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--check" | "--check=warn" => level = CheckLevel::Warn,
                "--check=strict" => level = CheckLevel::Strict,
                _ => {}
            }
        }
        level
    })
}

/// Whether alignment memoization stays enabled. Every experiment binary
/// accepts `--no-memo` to force the unmemoized simulator, which exists for
/// differential testing and for measuring the cache itself (`simbench`);
/// results are bit-identical either way.
pub fn memo_enabled() -> bool {
    static MEMO: OnceLock<bool> = OnceLock::new();
    *MEMO.get_or_init(|| !std::env::args().skip(1).any(|a| a == "--no-memo"))
}

/// Host worker threads per simulator. Every experiment binary accepts
/// `--threads N` (or `--threads=N`); without the flag the `NPAR_THREADS`
/// environment variable and then the machine's core count decide (see
/// `npar_sim::Gpu::with_threads`). Reports are bit-identical at any thread
/// count — the flag only changes host wall time.
pub fn thread_count() -> Option<usize> {
    static THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let value = if arg == "--threads" {
                args.next()
            } else {
                arg.strip_prefix("--threads=").map(str::to_string)
            };
            if let Some(v) = value {
                match v.trim().parse::<usize>() {
                    Ok(n) if n >= 1 => return Some(n),
                    _ => {
                        eprintln!("ignoring invalid --threads value {v:?}");
                        return None;
                    }
                }
            }
        }
        None
    })
}

/// The `--profile[=<path>]` command-line flag. Every experiment binary
/// accepts `--profile` to enable the npar-prof timeline profiler (see
/// `npar_sim::prof`) and export a Chrome-trace JSON per simulated run into
/// `results/profile_<tag>.trace.json`, or `--profile=<path>` to name the
/// output file explicitly (when a binary profiles several runs, each export
/// then overwrites the previous one — the last run wins). Reported numbers
/// are bit-identical with and without the flag; profiling is observational.
fn profile_flag() -> Option<&'static str> {
    static FLAG: OnceLock<Option<Option<String>>> = OnceLock::new();
    FLAG.get_or_init(|| {
        let mut flag = None;
        for arg in std::env::args().skip(1) {
            if arg == "--profile" {
                flag = Some(None);
            } else if let Some(path) = arg.strip_prefix("--profile=") {
                flag = Some(Some(path.to_string()));
            }
        }
        flag
    })
    .as_ref()
    .map(|path| path.as_deref().unwrap_or(""))
}

/// Whether `--profile[=<path>]` was passed.
pub fn profiling() -> bool {
    profile_flag().is_some()
}

/// Export the timeline recorded by `gpu` (if `--profile` is active and the
/// run produced one) as Chrome-trace JSON, and print the per-kernel summary.
/// `tag` names the default output file; it is sanitized to
/// `results/profile_<tag>.trace.json`. Load the file in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing` — see PROFILING.md.
pub fn export_profile(gpu: &mut Gpu, tag: &str) {
    let Some(explicit) = profile_flag() else {
        return;
    };
    let profile = gpu.take_profile();
    if profile.is_empty() {
        return;
    }
    let path = if explicit.is_empty() {
        let tag: String = tag
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        crate::results::results_dir().join(format!("profile_{tag}.trace.json"))
    } else {
        PathBuf::from(explicit)
    };
    std::fs::write(&path, profile.to_chrome_trace()).expect("write chrome trace");
    println!("{}", profile.summary());
    println!("  -> {}", path.display());
}

/// A K20-configured simulator honouring the command-line flags (`--check`,
/// `--no-memo`, `--profile`, `--threads`). Experiment binaries construct
/// their simulators through this so one flag covers every worker thread.
pub fn gpu() -> Gpu {
    with_check_flag(Gpu::k20())
}

/// Apply the command-line flags (`--check`, `--no-memo`, `--profile`,
/// `--threads`) to an explicitly configured simulator (the ablation and
/// cross-device binaries build theirs from custom configs).
#[must_use]
pub fn with_check_flag(gpu: Gpu) -> Gpu {
    let gpu = gpu
        .with_check(check_level())
        .with_memo(memo_enabled())
        .with_profiler(profiling());
    match thread_count() {
        Some(n) => gpu.with_threads(n),
        None => gpu,
    }
}

/// Run an experiment on a worker thread with a large stack.
///
/// The recursive GPU variants execute child grids depth-first during
/// functional simulation; on the Figure 9 graphs the first exploratory
/// dive nests tens of thousands of launches, far beyond the default 8 MiB
/// main-thread stack.
pub fn with_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    thread::Builder::new()
        .name("npar-experiment".into())
        .stack_size(1 << 30) // 1 GiB
        .spawn(f)
        .expect("spawn experiment thread")
        .join()
        .expect("experiment thread panicked")
}

/// Run independent experiment closures in parallel on worker threads
/// (each simulator instance is single-threaded and self-contained), with
/// big stacks, preserving input order in the results.
pub fn parallel_map<I, T>(inputs: Vec<I>, f: impl Fn(I) -> T + Send + Sync) -> Vec<T>
where
    I: Send,
    T: Send,
{
    use std::sync::Mutex;

    let threads = thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(inputs.len().max(1));
    let results: Vec<Mutex<Option<T>>> = (0..inputs.len()).map(|_| Mutex::new(None)).collect();
    let work: Mutex<std::vec::IntoIter<(usize, I)>> = Mutex::new(
        inputs
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_iter(),
    );
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Scoped threads inherit the default stack, so
                // recursion-heavy work uses with_big_stack inside `f`
                // when needed.
                loop {
                    let Some((idx, input)) = work.lock().expect("work queue").next() else {
                        break;
                    };
                    let out = f(input);
                    *results[idx].lock().expect("result slot") = Some(out);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_stack_runs_and_returns() {
        let v = with_big_stack(|| {
            // Deep recursion that would overflow a tiny stack.
            fn rec(n: u32) -> u64 {
                if n == 0 {
                    0
                } else {
                    1 + rec(n - 1)
                }
            }
            rec(100_000)
        });
        assert_eq!(v, 100_000);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
