//! Execution helpers for the experiment binaries.
//!
//! Every experiment binary shares one command-line surface, parsed once by
//! [`parse`] and cached: `--check[=warn|strict]`, `--no-memo`,
//! `--fast-forward=on|off`, `--threads N`, `--timing-threads N`,
//! `--analytic[=off]`, `--profile[=<path>]`,
//! `--analyze`, `--no-elide`, `--update-baseline` (acted on by the gated
//! benchmarks only, accepted everywhere for uniformity), and the serving
//! flags `--shards N`, `--queue N`, `--job-timeout-ms N`,
//! `--cache-dir PATH`, `--cold` (acted on by `npar-serve`/`loadtest` — see
//! SERVING.md). Unknown or malformed flags print a usage message to stderr
//! and exit nonzero — silently ignoring a typo like `--threads=abc` or
//! `--check=bogus` would run the wrong experiment.
//!
//! [`KNOWN_FLAGS`] enumerates the full surface; the `docs_check` binary
//! holds README.md's flags table to it, so a flag added here without a
//! documented row fails CI.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::thread;

use npar_sim::{CheckLevel, Gpu};

/// Parsed command-line flags shared by every experiment binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// `--check[=warn|strict]`.
    pub check: CheckLevel,
    /// Inverted `--no-memo`.
    pub memo: bool,
    /// `--fast-forward=on|off` (default on).
    pub fast_forward: bool,
    /// `--threads N` / `--threads=N`.
    pub threads: Option<usize>,
    /// `--timing-threads N` / `--timing-threads=N`: timing-pass worker
    /// lanes (DESIGN.md §13); results are bit-identical at any setting.
    pub timing_threads: Option<usize>,
    /// `--analytic[=on|off]` (default off): closed-form timing for
    /// uniform-wave grids when the analytic proof obligations hold.
    pub analytic: bool,
    /// `--profile[=<path>]`: `Some(None)` for the default per-run path,
    /// `Some(Some(path))` for an explicit one.
    pub profile: Option<Option<String>>,
    /// `--analyze`: collect and print npar-analyze kernel verdicts and
    /// template advice after the runs.
    pub analyze: bool,
    /// Inverted `--no-elide`: whether npar-check may skip scans for
    /// statically proven-clean kernels (on by default; reports are
    /// identical either way).
    pub elide: bool,
    /// `--update-baseline` (simbench, loadtest, analyze_all).
    pub update_baseline: bool,
    /// `--shards N`: serve worker shards (npar-serve / loadtest).
    pub shards: Option<usize>,
    /// `--queue N`: per-shard admission queue capacity (npar-serve /
    /// loadtest).
    pub queue: Option<usize>,
    /// `--job-timeout-ms N`: cooperative per-job timeout in milliseconds;
    /// `0` disables timeouts (npar-serve / loadtest).
    pub job_timeout_ms: Option<u64>,
    /// `--cache-dir PATH`: persistent serve-cache directory (npar-serve /
    /// loadtest).
    pub cache_dir: Option<String>,
    /// `--cold`: ignore an existing serve spill at boot (still spills on
    /// shutdown).
    pub cold: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            check: CheckLevel::Off,
            memo: true,
            fast_forward: true,
            threads: None,
            timing_threads: None,
            analytic: false,
            profile: None,
            analyze: false,
            elide: true,
            update_baseline: false,
            shards: None,
            queue: None,
            job_timeout_ms: None,
            cache_dir: None,
            cold: false,
        }
    }
}

/// Every flag the shared parser accepts, by leading name. The `docs_check`
/// binary asserts each appears in README.md's flags table — extending
/// [`parse`] without extending the docs fails CI with the flag named.
pub const KNOWN_FLAGS: &[&str] = &[
    "--check",
    "--no-memo",
    "--fast-forward",
    "--threads",
    "--timing-threads",
    "--analytic",
    "--profile",
    "--analyze",
    "--no-elide",
    "--update-baseline",
    "--shards",
    "--queue",
    "--job-timeout-ms",
    "--cache-dir",
    "--cold",
];

/// One-line-per-flag usage text, printed to stderr on a parse error.
pub const USAGE: &str = "\
usage: <experiment> [flags]
  --check[=warn|strict]   record hazards (warn) or abort on them (strict)
  --no-memo               disable alignment memoization (differential runs)
  --fast-forward=on|off   toggle the timing-pass fast paths (default on)
  --threads N             host worker threads (default: NPAR_THREADS/cores)
  --timing-threads N      timing-pass worker lanes (default 1; DESIGN.md \u{a7}13)
  --analytic[=on|off]     closed-form timing for uniform-wave grids (default off)
  --profile[=<path>]      export npar-prof Chrome traces (see PROFILING.md)
  --analyze               print npar-analyze verdicts and template advice
  --no-elide              disable proof-carrying scan elision (differential)
  --update-baseline       rewrite the stored baseline (gated benchmarks)
  --shards N              serve worker shards (npar-serve/loadtest; SERVING.md)
  --queue N               per-shard admission queue capacity (npar-serve/loadtest)
  --job-timeout-ms N      per-job cooperative timeout, 0 disables (npar-serve/loadtest)
  --cache-dir PATH        persistent serve-cache directory (npar-serve/loadtest)
  --cold                  ignore an existing serve spill at boot (npar-serve/loadtest)";

/// Parse an argument list (without the binary name). Pure so the error
/// paths are unit-testable; [`parsed`] wraps it with the
/// print-usage-and-exit policy.
pub fn parse(args: &[String]) -> Result<Args, String> {
    let mut out = Args::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" | "--check=warn" => out.check = CheckLevel::Warn,
            "--check=strict" => out.check = CheckLevel::Strict,
            "--no-memo" => out.memo = false,
            "--fast-forward=on" => out.fast_forward = true,
            "--fast-forward=off" => out.fast_forward = false,
            "--profile" => out.profile = Some(None),
            "--analytic" | "--analytic=on" => out.analytic = true,
            "--analytic=off" => out.analytic = false,
            "--analyze" => out.analyze = true,
            "--no-elide" => out.elide = false,
            "--update-baseline" => out.update_baseline = true,
            "--cold" => out.cold = true,
            _ => {
                if let Some(path) = arg.strip_prefix("--profile=") {
                    if path.is_empty() {
                        return Err("empty --profile= path".into());
                    }
                    out.profile = Some(Some(path.to_string()));
                } else if arg == "--threads" || arg.starts_with("--threads=") {
                    let value = match arg.strip_prefix("--threads=") {
                        Some(v) => v.to_string(),
                        None => it
                            .next()
                            .cloned()
                            .ok_or_else(|| "missing value for --threads".to_string())?,
                    };
                    match value.trim().parse::<usize>() {
                        Ok(n) if n >= 1 => out.threads = Some(n),
                        _ => return Err(format!("invalid --threads value {value:?}")),
                    }
                } else if arg == "--timing-threads" || arg.starts_with("--timing-threads=") {
                    let value = match arg.strip_prefix("--timing-threads=") {
                        Some(v) => v.to_string(),
                        None => it
                            .next()
                            .cloned()
                            .ok_or_else(|| "missing value for --timing-threads".to_string())?,
                    };
                    match value.trim().parse::<usize>() {
                        Ok(n) if n >= 1 => out.timing_threads = Some(n),
                        _ => return Err(format!("invalid --timing-threads value {value:?}")),
                    }
                } else if arg == "--shards" || arg.starts_with("--shards=") {
                    let value = match arg.strip_prefix("--shards=") {
                        Some(v) => v.to_string(),
                        None => it
                            .next()
                            .cloned()
                            .ok_or_else(|| "missing value for --shards".to_string())?,
                    };
                    match value.trim().parse::<usize>() {
                        Ok(n) if n >= 1 => out.shards = Some(n),
                        _ => return Err(format!("invalid --shards value {value:?}")),
                    }
                } else if arg == "--queue" || arg.starts_with("--queue=") {
                    let value = match arg.strip_prefix("--queue=") {
                        Some(v) => v.to_string(),
                        None => it
                            .next()
                            .cloned()
                            .ok_or_else(|| "missing value for --queue".to_string())?,
                    };
                    match value.trim().parse::<usize>() {
                        Ok(n) if n >= 1 => out.queue = Some(n),
                        _ => return Err(format!("invalid --queue value {value:?}")),
                    }
                } else if arg == "--job-timeout-ms" || arg.starts_with("--job-timeout-ms=") {
                    let value = match arg.strip_prefix("--job-timeout-ms=") {
                        Some(v) => v.to_string(),
                        None => it
                            .next()
                            .cloned()
                            .ok_or_else(|| "missing value for --job-timeout-ms".to_string())?,
                    };
                    match value.trim().parse::<u64>() {
                        // 0 is legal: it means "no timeout".
                        Ok(n) => out.job_timeout_ms = Some(n),
                        _ => return Err(format!("invalid --job-timeout-ms value {value:?}")),
                    }
                } else if arg == "--cache-dir" || arg.starts_with("--cache-dir=") {
                    let value = match arg.strip_prefix("--cache-dir=") {
                        Some(v) => v.to_string(),
                        None => it
                            .next()
                            .cloned()
                            .ok_or_else(|| "missing value for --cache-dir".to_string())?,
                    };
                    if value.is_empty() {
                        return Err("empty --cache-dir path".into());
                    }
                    out.cache_dir = Some(value);
                } else if let Some(v) = arg.strip_prefix("--analytic=") {
                    return Err(format!("invalid --analytic value {v:?}"));
                } else if let Some(v) = arg.strip_prefix("--check=") {
                    return Err(format!("invalid --check level {v:?}"));
                } else if let Some(v) = arg.strip_prefix("--fast-forward=") {
                    return Err(format!("invalid --fast-forward value {v:?}"));
                } else {
                    return Err(format!("unknown flag {arg:?}"));
                }
            }
        }
    }
    Ok(out)
}

/// The process's parsed flags. On the first call a malformed command line
/// prints the error and [`USAGE`] to stderr and exits with status 2.
pub fn parsed() -> &'static Args {
    static ARGS: OnceLock<Args> = OnceLock::new();
    ARGS.get_or_init(|| {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match parse(&argv) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                std::process::exit(2);
            }
        }
    })
}

/// Validate the command line up front. Experiment binaries call this first
/// in `main` so a typo'd flag is rejected before datasets are generated or
/// simulations start — the lazy accessors would catch it anyway, but only
/// at the first simulator construction, possibly seconds in.
pub fn init() {
    let _ = parsed();
}

/// Hazard-checker severity requested on the command line (`--check` /
/// `--check=warn` records hazards while the runs continue, `--check=strict`
/// aborts an experiment on the first detected hazard).
pub fn check_level() -> CheckLevel {
    parsed().check
}

/// Whether alignment memoization stays enabled (`--no-memo` forces the
/// unmemoized simulator, for differential testing and for measuring the
/// cache itself); results are bit-identical either way.
pub fn memo_enabled() -> bool {
    parsed().memo
}

/// Whether the timing-pass fast paths stay enabled (`--fast-forward=off`
/// isolates the DESIGN.md §11 scheduler mechanisms in ablation runs);
/// results are bit-identical either way.
pub fn fast_forward_enabled() -> bool {
    parsed().fast_forward
}

/// Host worker threads per simulator, from `--threads N` / `--threads=N`;
/// without the flag the `NPAR_THREADS` environment variable and then the
/// machine's core count decide (see `npar_sim::Gpu::with_threads`).
/// Reports are bit-identical at any thread count — the flag only changes
/// host wall time.
pub fn thread_count() -> Option<usize> {
    parsed().threads
}

/// Timing-pass worker lanes, from `--timing-threads N` /
/// `--timing-threads=N`; without the flag the simulator default (1,
/// serial event loop) applies. Reports and profiler timelines are
/// bit-identical at any setting (see `npar_sim::Gpu::with_timing_threads`
/// and DESIGN.md §13).
pub fn timing_thread_count() -> Option<usize> {
    parsed().timing_threads
}

/// Whether `--analytic` was passed: the timing pass may then finish
/// uniform-wave grids in closed form when the analytic proof obligations
/// hold; bit-identical to event replay whenever it engages.
pub fn analytic_enabled() -> bool {
    parsed().analytic
}

/// Whether `--analyze` was passed: binaries then collect npar-analyze
/// kernel verdicts during their runs and print them (with template advice)
/// via [`print_analysis`].
pub fn analyze_enabled() -> bool {
    parsed().analyze
}

/// Whether proof-carrying scan elision stays enabled (`--no-elide` forces
/// every block through the full per-block scans, for differential testing
/// and for measuring the elision itself); hazard reports are identical
/// either way.
pub fn elide_enabled() -> bool {
    parsed().elide
}

/// Whether `--update-baseline` was passed (simbench and loadtest rewrite
/// their stored baselines instead of gating against them).
pub fn update_baseline() -> bool {
    parsed().update_baseline
}

/// A serving configuration honouring the command-line flags (`--shards`,
/// `--queue`, `--job-timeout-ms`, `--cache-dir`, `--cold`). Flags left off
/// the command line keep the [`npar_serve::ServeConfig`] defaults, which in
/// turn read the `NPAR_SHARDS` / `NPAR_SERVE_CACHE` environment variables —
/// see SERVING.md for the full precedence table.
pub fn serve_config() -> npar_serve::ServeConfig {
    let args = parsed();
    let mut cfg = npar_serve::ServeConfig::default();
    if let Some(n) = args.shards {
        cfg.shards = n;
    }
    if let Some(n) = args.queue {
        cfg.queue_cap = n;
    }
    if let Some(ms) = args.job_timeout_ms {
        // 0 means "no timeout" so operators can disable the default.
        cfg.timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
    }
    if let Some(dir) = &args.cache_dir {
        cfg.cache_dir = Some(PathBuf::from(dir));
    }
    cfg.cold = args.cold;
    if let Some(n) = args.threads {
        cfg.gpu_threads = n;
    }
    cfg
}

/// The `--profile[=<path>]` flag: `Some("")` for the default per-run path
/// under `results/`, `Some(path)` for an explicit output file (when a
/// binary profiles several runs, each export then overwrites the previous
/// one — the last run wins).
fn profile_flag() -> Option<&'static str> {
    parsed()
        .profile
        .as_ref()
        .map(|path| path.as_deref().unwrap_or(""))
}

/// Whether `--profile[=<path>]` was passed.
pub fn profiling() -> bool {
    profile_flag().is_some()
}

/// Export the timeline recorded by `gpu` (if `--profile` is active and the
/// run produced one) as Chrome-trace JSON, and print the per-kernel summary.
/// `tag` names the default output file; it is sanitized to
/// `results/profile_<tag>.trace.json`. Load the file in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing` — see PROFILING.md.
pub fn export_profile(gpu: &mut Gpu, tag: &str) {
    let Some(explicit) = profile_flag() else {
        return;
    };
    let profile = gpu.take_profile();
    if profile.is_empty() {
        return;
    }
    let path = if explicit.is_empty() {
        let tag: String = tag
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        crate::results::results_dir().join(format!("profile_{tag}.trace.json"))
    } else {
        PathBuf::from(explicit)
    };
    std::fs::write(&path, profile.to_chrome_trace()).expect("write chrome trace");
    println!("{}", profile.summary());
    println!("  -> {}", path.display());
}

/// A K20-configured simulator honouring the command-line flags (`--check`,
/// `--no-memo`, `--fast-forward`, `--profile`, `--threads`). Experiment
/// binaries construct their simulators through this so one flag covers
/// every worker thread.
pub fn gpu() -> Gpu {
    with_check_flag(Gpu::k20())
}

/// Apply the command-line flags (`--check`, `--no-memo`, `--fast-forward`,
/// `--profile`, `--threads`) to an explicitly configured simulator (the
/// ablation and cross-device binaries build theirs from custom configs).
#[must_use]
pub fn with_check_flag(gpu: Gpu) -> Gpu {
    let gpu = gpu
        .with_check(check_level())
        .with_memo(memo_enabled())
        .with_fast_forward(fast_forward_enabled())
        .with_elide(elide_enabled())
        .with_analyze(analyze_enabled())
        .with_analytic(analytic_enabled())
        .with_profiler(profiling());
    let gpu = match thread_count() {
        Some(n) => gpu.with_threads(n),
        None => gpu,
    };
    match timing_thread_count() {
        Some(n) => gpu.with_timing_threads(n),
        None => gpu,
    }
}

/// Print the npar-analyze report accumulated by `gpu` (verdicts per kernel
/// class plus the template advisor's recommendation), when `--analyze` is
/// active and the run observed any kernels. `tag` names the run in the
/// section header.
pub fn print_analysis(gpu: &Gpu, tag: &str) {
    if !analyze_enabled() {
        return;
    }
    let report = gpu.analysis();
    if report.is_empty() {
        return;
    }
    println!("\nnpar-analyze [{tag}]\n{report}");
}

/// Run an experiment on a worker thread with a large stack.
///
/// The recursive GPU variants execute child grids depth-first during
/// functional simulation; on the Figure 9 graphs the first exploratory
/// dive nests tens of thousands of launches, far beyond the default 8 MiB
/// main-thread stack.
pub fn with_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    thread::Builder::new()
        .name("npar-experiment".into())
        .stack_size(1 << 30) // 1 GiB
        .spawn(f)
        .expect("spawn experiment thread")
        .join()
        .expect("experiment thread panicked")
}

/// Run independent experiment closures in parallel on worker threads
/// (each simulator instance is single-threaded and self-contained), with
/// big stacks, preserving input order in the results.
pub fn parallel_map<I, T>(inputs: Vec<I>, f: impl Fn(I) -> T + Send + Sync) -> Vec<T>
where
    I: Send,
    T: Send,
{
    use std::sync::Mutex;

    let threads = thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(inputs.len().max(1));
    let results: Vec<Mutex<Option<T>>> = (0..inputs.len()).map(|_| Mutex::new(None)).collect();
    let work: Mutex<std::vec::IntoIter<(usize, I)>> = Mutex::new(
        inputs
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_iter(),
    );
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Scoped threads inherit the default stack, so
                // recursion-heavy work uses with_big_stack inside `f`
                // when needed.
                loop {
                    let Some((idx, input)) = work.lock().expect("work queue").next() else {
                        break;
                    };
                    let out = f(input);
                    *results[idx].lock().expect("result slot") = Some(out);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Args, String> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parse_defaults_and_flags() {
        let a = p(&[]).unwrap();
        assert_eq!(a, Args::default());
        assert!(a.memo && a.fast_forward && a.threads.is_none());

        let a = p(&[
            "--check=strict",
            "--no-memo",
            "--fast-forward=off",
            "--threads",
            "8",
            "--timing-threads",
            "4",
            "--analytic",
            "--profile=out.json",
            "--analyze",
            "--no-elide",
            "--update-baseline",
            "--shards",
            "4",
            "--queue=32",
            "--job-timeout-ms",
            "500",
            "--cache-dir=/tmp/spill",
            "--cold",
        ])
        .unwrap();
        assert_eq!(a.check, CheckLevel::Strict);
        assert!(!a.memo);
        assert!(!a.fast_forward);
        assert_eq!(a.threads, Some(8));
        assert_eq!(a.timing_threads, Some(4));
        assert!(a.analytic);
        assert_eq!(a.profile, Some(Some("out.json".into())));
        assert!(a.analyze);
        assert!(!a.elide);
        assert!(a.update_baseline);
        assert_eq!(a.shards, Some(4));
        assert_eq!(a.queue, Some(32));
        assert_eq!(a.job_timeout_ms, Some(500));
        assert_eq!(a.cache_dir.as_deref(), Some("/tmp/spill"));
        assert!(a.cold);

        // --job-timeout-ms 0 is legal (disables the timeout); the serve
        // defaults stay untouched when the flags are absent.
        let a = p(&["--job-timeout-ms=0"]).unwrap();
        assert_eq!(a.job_timeout_ms, Some(0));
        assert!(a.shards.is_none() && a.queue.is_none() && a.cache_dir.is_none());
        assert!(!a.cold);

        let a = p(&["--check", "--threads=2", "--profile", "--fast-forward=on"]).unwrap();
        assert_eq!(a.check, CheckLevel::Warn);
        assert_eq!(a.threads, Some(2));
        assert_eq!(a.profile, Some(None));
        assert!(a.fast_forward);

        let a = p(&["--timing-threads=8", "--analytic=on"]).unwrap();
        assert_eq!(a.timing_threads, Some(8));
        assert!(a.analytic);
        let a = p(&["--analytic=off"]).unwrap();
        assert!(!a.analytic);
    }

    #[test]
    fn parse_rejects_malformed_flags() {
        for bad in [
            &["--threads=abc"][..],
            &["--threads", "0"],
            &["--threads"],
            &["--timing-threads=abc"],
            &["--timing-threads", "0"],
            &["--timing-threads"],
            &["--analytic=maybe"],
            &["--analytic="],
            &["--check=bogus"],
            &["--fast-forward"],
            &["--fast-forward=maybe"],
            &["--profile="],
            &["--no-meno"],
            &["--analyze=on"],
            &["--no-elide=1"],
            &["--shards=0"],
            &["--shards", "abc"],
            &["--shards"],
            &["--queue=0"],
            &["--queue"],
            &["--job-timeout-ms=never"],
            &["--job-timeout-ms"],
            &["--cache-dir="],
            &["--cache-dir"],
            &["--cold=1"],
            &["extra-positional"],
        ] {
            let err = p(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad:?} must be rejected");
        }
        // The usage text names every flag an error could be about, and
        // KNOWN_FLAGS (the docs_check contract) covers the same surface.
        for flag in KNOWN_FLAGS {
            assert!(USAGE.contains(flag), "{flag} missing from USAGE");
        }
        assert_eq!(
            KNOWN_FLAGS.len(),
            15,
            "keep KNOWN_FLAGS in sync with parse()"
        );
    }

    #[test]
    fn big_stack_runs_and_returns() {
        let v = with_big_stack(|| {
            // Deep recursion that would overflow a tiny stack.
            fn rec(n: u32) -> u64 {
                if n == 0 {
                    0
                } else {
                    1 + rec(n - 1)
                }
            }
            rec(100_000)
        });
        assert_eq!(v, 100_000);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
