//! Execution helpers for the experiment binaries.

use std::sync::OnceLock;
use std::thread;

use npar_sim::{CheckLevel, Gpu};

/// Hazard-checker severity requested on the command line. Every experiment
/// binary accepts `--check` (or `--check=warn`) to record hazards while the
/// runs continue, and `--check=strict` to abort an experiment on the first
/// detected hazard. Unknown arguments are ignored — the experiments have no
/// other flags.
pub fn check_level() -> CheckLevel {
    static LEVEL: OnceLock<CheckLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let mut level = CheckLevel::Off;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--check" | "--check=warn" => level = CheckLevel::Warn,
                "--check=strict" => level = CheckLevel::Strict,
                _ => {}
            }
        }
        level
    })
}

/// Whether alignment memoization stays enabled. Every experiment binary
/// accepts `--no-memo` to force the unmemoized simulator, which exists for
/// differential testing and for measuring the cache itself (`simbench`);
/// results are bit-identical either way.
pub fn memo_enabled() -> bool {
    static MEMO: OnceLock<bool> = OnceLock::new();
    *MEMO.get_or_init(|| !std::env::args().skip(1).any(|a| a == "--no-memo"))
}

/// A K20-configured simulator honouring the command-line flags (`--check`,
/// `--no-memo`). Experiment binaries construct their simulators through
/// this so one flag covers every worker thread.
pub fn gpu() -> Gpu {
    Gpu::k20()
        .with_check(check_level())
        .with_memo(memo_enabled())
}

/// Apply the command-line flags (`--check`, `--no-memo`) to an explicitly
/// configured simulator (the ablation and cross-device binaries build
/// theirs from custom configs).
#[must_use]
pub fn with_check_flag(gpu: Gpu) -> Gpu {
    gpu.with_check(check_level()).with_memo(memo_enabled())
}

/// Run an experiment on a worker thread with a large stack.
///
/// The recursive GPU variants execute child grids depth-first during
/// functional simulation; on the Figure 9 graphs the first exploratory
/// dive nests tens of thousands of launches, far beyond the default 8 MiB
/// main-thread stack.
pub fn with_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    thread::Builder::new()
        .name("npar-experiment".into())
        .stack_size(1 << 30) // 1 GiB
        .spawn(f)
        .expect("spawn experiment thread")
        .join()
        .expect("experiment thread panicked")
}

/// Run independent experiment closures in parallel on worker threads
/// (each simulator instance is single-threaded and self-contained), with
/// big stacks, preserving input order in the results.
pub fn parallel_map<I, T>(inputs: Vec<I>, f: impl Fn(I) -> T + Send + Sync) -> Vec<T>
where
    I: Send,
    T: Send,
{
    use std::sync::Mutex;

    let threads = thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(inputs.len().max(1));
    let results: Vec<Mutex<Option<T>>> = (0..inputs.len()).map(|_| Mutex::new(None)).collect();
    let work: Mutex<std::vec::IntoIter<(usize, I)>> = Mutex::new(
        inputs
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_iter(),
    );
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Scoped threads inherit the default stack, so
                // recursion-heavy work uses with_big_stack inside `f`
                // when needed.
                loop {
                    let Some((idx, input)) = work.lock().expect("work queue").next() else {
                        break;
                    };
                    let out = f(input);
                    *results[idx].lock().expect("result slot") = Some(out);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_stack_runs_and_returns() {
        let v = with_big_stack(|| {
            // Deep recursion that would overflow a tiny stack.
            fn rec(n: u32) -> u64 {
                if n == 0 {
                    0
                } else {
                    1 + rec(n - 1)
                }
            }
            rec(100_000)
        });
        assert_eq!(v, 100_000);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
