//! # npar-bench — experiment harness
//!
//! One runnable target per figure/table of the ICPP'15 paper (see
//! DESIGN.md §3 for the index). This library holds the shared pieces: the
//! datasets at their (scaled) paper parameters, result tables, and the
//! big-stack runner the deeply recursive experiments need.

#![warn(missing_docs)]

pub mod datasets;
pub mod results;
pub mod runner;
pub mod table;
pub mod tree_experiment;
