//! Criterion benches mirroring the paper's tables and figures at
//! bench-friendly scale: each group times the simulator running one
//! experiment point, so `cargo bench` tracks regressions in both the
//! templates and the simulator itself.
//!
//! * `fig2/...` — the three sort implementations;
//! * `fig5/...` — SSSP under each loop template;
//! * `fig6/...` — PageRank and SpMV lbTHRES points;
//! * `fig7/...` — tree descendants under each recursive template;
//! * `fig9/...` — recursive BFS variants;
//! * `table1/...` — the profiling run behind Table I.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use npar_apps::{bfs, pagerank, sort, spmv, sssp, tree_apps};
use npar_core::{LoopParams, LoopTemplate, RecParams, RecTemplate};
use npar_graph::{citeseer_like, uniform_random, with_random_weights};
use npar_sim::Gpu;
use npar_tree::TreeGen;

/// Bench-scale stand-ins (milliseconds per iteration, not minutes).
fn small_citeseer() -> npar_graph::Csr {
    with_random_weights(&citeseer_like(4_000, 1), 10, 2)
}

fn bench_fig5_sssp(c: &mut Criterion) {
    let g = small_citeseer();
    let mut group = c.benchmark_group("fig5_sssp");
    group.sample_size(10);
    for template in LoopTemplate::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(template.label()),
            &template,
            |b, &template| {
                b.iter(|| {
                    let mut gpu = Gpu::k20();
                    sssp::sssp_gpu(&mut gpu, &g, 0, template, &LoopParams::with_lb_thres(32))
                })
            },
        );
    }
    group.finish();
}

fn bench_fig6_loops(c: &mut Criterion) {
    let g = small_citeseer();
    let x: Vec<f32> = (0..g.num_nodes()).map(|i| i as f32).collect();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for lb in [32usize, 256] {
        group.bench_with_input(BenchmarkId::new("spmv_dbuf_shared", lb), &lb, |b, &lb| {
            b.iter(|| {
                let mut gpu = Gpu::k20();
                spmv::spmv_gpu(
                    &mut gpu,
                    &g,
                    &x,
                    LoopTemplate::DbufShared,
                    &LoopParams::with_lb_thres(lb),
                )
            })
        });
        group.bench_with_input(
            BenchmarkId::new("pagerank_dbuf_global", lb),
            &lb,
            |b, &lb| {
                b.iter(|| {
                    let mut gpu = Gpu::k20();
                    pagerank::pagerank_gpu(
                        &mut gpu,
                        &g,
                        2,
                        LoopTemplate::DbufGlobal,
                        &LoopParams::with_lb_thres(lb),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_fig7_trees(c: &mut Criterion) {
    let tree = TreeGen {
        depth: 4,
        outdegree: 32,
        sparsity: 0,
        seed: 3,
    }
    .generate();
    let mut group = c.benchmark_group("fig7_tree_descendants");
    group.sample_size(10);
    for template in RecTemplate::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(template.label()),
            &template,
            |b, &template| {
                b.iter(|| {
                    let mut gpu = Gpu::k20();
                    tree_apps::tree_gpu(
                        &mut gpu,
                        &tree,
                        tree_apps::TreeMetric::Descendants,
                        template,
                        &RecParams::default(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_fig9_bfs(c: &mut Criterion) {
    let g = uniform_random(2_000, 1, 32, 5);
    let mut group = c.benchmark_group("fig9_recursive_bfs");
    group.sample_size(10);
    group.bench_function("flat", |b| {
        b.iter(|| {
            let mut gpu = Gpu::k20();
            bfs::bfs_flat_gpu(
                &mut gpu,
                &g,
                0,
                LoopTemplate::ThreadMapped,
                &LoopParams::default(),
            )
        })
    });
    for (label, variant, streams) in [
        ("naive", bfs::RecBfsVariant::Naive, 1u32),
        ("naive+stream", bfs::RecBfsVariant::Naive, 2),
        ("hier", bfs::RecBfsVariant::Hier, 1),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut gpu = Gpu::k20();
                bfs::bfs_recursive_gpu(&mut gpu, &g, 0, variant, streams)
            })
        });
    }
    group.finish();
}

fn bench_fig2_sorts(c: &mut Criterion) {
    let data: Vec<u32> = (0..20_000u32).map(|x| x.wrapping_mul(2654435761)).collect();
    let mut group = c.benchmark_group("fig2_sort");
    group.sample_size(10);
    for algo in [
        sort::SortAlgo::MergeFlat,
        sort::SortAlgo::QuickSimple,
        sort::SortAlgo::QuickAdvanced,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.label()),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    let mut gpu = Gpu::k20();
                    sort::sort_gpu(&mut gpu, &data, algo, &sort::SortParams::default())
                })
            },
        );
    }
    group.finish();
}

fn bench_table1_profile(c: &mut Criterion) {
    let g = small_citeseer();
    let mut group = c.benchmark_group("table1_profile");
    group.sample_size(10);
    group.bench_function("sssp_profiled_baseline", |b| {
        b.iter(|| {
            let mut gpu = Gpu::k20();
            let r = sssp::sssp_gpu(
                &mut gpu,
                &g,
                0,
                LoopTemplate::ThreadMapped,
                &LoopParams::default(),
            );
            r.report.total().warp_execution_efficiency()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig5_sssp,
    bench_fig6_loops,
    bench_fig7_trees,
    bench_fig9_bfs,
    bench_fig2_sorts,
    bench_table1_profile
);
criterion_main!(benches);
