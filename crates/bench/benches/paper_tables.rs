//! Wall-clock benches mirroring the paper's tables and figures at
//! bench-friendly scale (`harness = false`, hand-rolled timing — the
//! offline build environment has no criterion). Each group times the
//! simulator running one experiment point, so `cargo bench` tracks
//! regressions in both the templates and the simulator itself.
//!
//! * `fig2/...` — the three sort implementations;
//! * `fig5/...` — SSSP under each loop template;
//! * `fig6/...` — PageRank and SpMV lbTHRES points;
//! * `fig7/...` — tree descendants under each recursive template;
//! * `fig9/...` — recursive BFS variants;
//! * `table1/...` — the profiling run behind Table I.

use std::hint::black_box;
use std::time::Instant;

use npar_apps::{bfs, pagerank, sort, spmv, sssp, tree_apps};
use npar_core::{LoopParams, LoopTemplate, RecParams, RecTemplate};
use npar_graph::{citeseer_like, uniform_random, with_random_weights};
use npar_sim::Gpu;
use npar_tree::TreeGen;

const WARMUP: usize = 1;
const SAMPLES: usize = 5;

/// Time `f` over [`SAMPLES`] iterations (after [`WARMUP`]) and print the
/// per-iteration median in criterion-like `group/name  time` format.
fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    for _ in 0..WARMUP {
        f();
    }
    let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64());
    }
    #[allow(clippy::disallowed_methods)] // total_cmp comparator
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (value, unit) = if median >= 1.0 {
        (median, "s")
    } else if median >= 1e-3 {
        (median * 1e3, "ms")
    } else {
        (median * 1e6, "us")
    };
    println!("{group}/{name:<24} {value:>9.3} {unit}");
}

/// Bench-scale stand-ins (milliseconds per iteration, not minutes).
fn small_citeseer() -> npar_graph::Csr {
    with_random_weights(&citeseer_like(4_000, 1), 10, 2)
}

fn bench_fig5_sssp() {
    let g = small_citeseer();
    for template in LoopTemplate::ALL {
        bench("fig5_sssp", template.label(), || {
            let mut gpu = Gpu::k20();
            black_box(sssp::sssp_gpu(
                &mut gpu,
                &g,
                0,
                template,
                &LoopParams::with_lb_thres(32),
            ));
        });
    }
}

fn bench_fig6_loops() {
    let g = small_citeseer();
    let x: Vec<f32> = (0..g.num_nodes()).map(|i| i as f32).collect();
    for lb in [32usize, 256] {
        bench("fig6", &format!("spmv_dbuf_shared/{lb}"), || {
            let mut gpu = Gpu::k20();
            black_box(spmv::spmv_gpu(
                &mut gpu,
                &g,
                &x,
                LoopTemplate::DbufShared,
                &LoopParams::with_lb_thres(lb),
            ));
        });
        bench("fig6", &format!("pagerank_dbuf_global/{lb}"), || {
            let mut gpu = Gpu::k20();
            black_box(pagerank::pagerank_gpu(
                &mut gpu,
                &g,
                2,
                LoopTemplate::DbufGlobal,
                &LoopParams::with_lb_thres(lb),
            ));
        });
    }
}

fn bench_fig7_trees() {
    let tree = TreeGen {
        depth: 4,
        outdegree: 32,
        sparsity: 0,
        seed: 3,
    }
    .generate();
    for template in RecTemplate::ALL {
        bench("fig7_tree_descendants", template.label(), || {
            let mut gpu = Gpu::k20();
            black_box(tree_apps::tree_gpu(
                &mut gpu,
                &tree,
                tree_apps::TreeMetric::Descendants,
                template,
                &RecParams::default(),
            ));
        });
    }
}

fn bench_fig9_bfs() {
    let g = uniform_random(2_000, 1, 32, 5);
    bench("fig9_recursive_bfs", "flat", || {
        let mut gpu = Gpu::k20();
        black_box(bfs::bfs_flat_gpu(
            &mut gpu,
            &g,
            0,
            LoopTemplate::ThreadMapped,
            &LoopParams::default(),
        ));
    });
    for (label, variant, streams) in [
        ("naive", bfs::RecBfsVariant::Naive, 1u32),
        ("naive+stream", bfs::RecBfsVariant::Naive, 2),
        ("hier", bfs::RecBfsVariant::Hier, 1),
    ] {
        bench("fig9_recursive_bfs", label, || {
            let mut gpu = Gpu::k20();
            black_box(bfs::bfs_recursive_gpu(&mut gpu, &g, 0, variant, streams));
        });
    }
}

fn bench_fig2_sorts() {
    let data: Vec<u32> = (0..20_000u32).map(|x| x.wrapping_mul(2654435761)).collect();
    for algo in [
        sort::SortAlgo::MergeFlat,
        sort::SortAlgo::QuickSimple,
        sort::SortAlgo::QuickAdvanced,
    ] {
        bench("fig2_sort", algo.label(), || {
            let mut gpu = Gpu::k20();
            black_box(sort::sort_gpu(
                &mut gpu,
                &data,
                algo,
                &sort::SortParams::default(),
            ));
        });
    }
}

fn bench_table1_profile() {
    let g = small_citeseer();
    bench("table1_profile", "sssp_profiled_baseline", || {
        let mut gpu = Gpu::k20();
        let r = sssp::sssp_gpu(
            &mut gpu,
            &g,
            0,
            LoopTemplate::ThreadMapped,
            &LoopParams::default(),
        );
        black_box(r.report.total().warp_execution_efficiency());
    });
}

fn main() {
    npar_bench::runner::with_big_stack(|| {
        bench_fig5_sssp();
        bench_fig6_loops();
        bench_fig7_trees();
        bench_fig9_bfs();
        bench_fig2_sorts();
        bench_table1_profile();
    });
}
